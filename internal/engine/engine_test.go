package engine

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/isa"
	"repro/internal/mem"
)

type testRig struct {
	t    *testing.T
	e    *Engine
	h    *mem.Hierarchy
	now  int64
	toks map[int][]*ConfigToken
}

func newRig(t *testing.T, cfg Config) *testRig {
	hc := mem.DefaultHierarchyConfig()
	hc.Prefetchers = false
	h := mem.NewHierarchy(hc)
	return &testRig{t: t, e: New(cfg, h), h: h, toks: map[int][]*ConfigToken{}}
}

func (r *testRig) tick() {
	r.now++
	r.h.Tick(r.now)
	r.e.Tick(r.now)
}

// configure pushes the config µOps for stream u and runs until activated,
// then commits the parts.
func (r *testRig) configure(u int, d *descriptor.Descriptor) {
	prevSlot, hadPrev := r.e.StreamFor(u)
	for _, in := range isa.SCfgParts(u, d) {
		tok, ok := r.e.RenameConfigPart(in.Cfg)
		if !ok {
			r.t.Fatal("SCROB full during configure")
		}
		r.toks[u] = append(r.toks[u], tok)
	}
	activated := func() bool {
		slot, ok := r.e.StreamFor(u)
		return ok && (!hadPrev || slot != prevSlot) && !r.e.Configuring(slot)
	}
	for i := 0; i < 100 && !activated(); i++ {
		r.tick()
	}
	if !activated() {
		r.t.Fatalf("stream u%d did not activate", u)
	}
	for _, tok := range r.toks[u] {
		r.e.CommitConfigPart(tok)
	}
	r.toks[u] = nil
}

// consume waits until the next chunk is ready and returns it.
func (r *testRig) consume(u int) ChunkView {
	slot, ok := r.e.StreamFor(u)
	if !ok {
		return syntheticEnd
	}
	for i := 0; i < 20000; i++ {
		if v, ok := r.e.ConsumeChunk(slot); ok {
			return v
		}
		r.tick()
	}
	r.t.Fatalf("chunk of u%d never became ready", u)
	return ChunkView{}
}

func (r *testRig) fillFloats(base uint64, w arch.ElemWidth, vals []float64) {
	for i, v := range vals {
		r.h.Mem.WriteFloat(base+uint64(i)*uint64(w), w, v)
	}
}

func (r *testRig) fillInts(base uint64, w arch.ElemWidth, vals []uint64) {
	for i, v := range vals {
		r.h.Mem.Write(base+uint64(i)*uint64(w), w, v)
	}
}

func TestLoadStreamDeliversDataInChunks(t *testing.T) {
	r := newRig(t, DefaultConfig())
	base := r.h.Mem.Alloc(4*40, 64)
	vals := make([]float64, 40)
	for i := range vals {
		vals[i] = float64(i) * 1.5
	}
	r.fillFloats(base, arch.W4, vals)
	d := descriptor.New(base, arch.W4, descriptor.Load).Linear(40, 1).MustBuild()
	r.configure(0, d)

	// 40 word elements at 16 lanes → chunks of 16, 16, 8.
	wantN := []int{16, 16, 8}
	got := 0
	for i, n := range wantN {
		v := r.consume(0)
		if !v.Consumed {
			t.Fatalf("chunk %d: synthetic, want real", i)
		}
		if v.N != n {
			t.Fatalf("chunk %d: %d lanes, want %d", i, v.N, n)
		}
		for l := 0; l < v.N; l++ {
			if f := v.Data.F(l); f != vals[got] {
				t.Fatalf("chunk %d lane %d = %v, want %v", i, l, f, vals[got])
			}
			got++
		}
		slot, _ := r.e.StreamFor(0)
		r.e.CommitConsume(slot, v.Seq)
		if i == len(wantN)-1 && !v.Last {
			t.Fatal("final chunk not marked Last")
		}
	}
	// Reading past the end yields a synthetic chunk.
	slot, ok := r.e.StreamFor(0)
	if ok {
		v, okc := r.e.ConsumeChunk(slot)
		if !okc || v.Consumed || !v.Last {
			t.Fatalf("past-end read: %+v ok=%v", v, okc)
		}
	}
}

func TestChunksRespectDim0Boundaries(t *testing.T) {
	r := newRig(t, DefaultConfig())
	base := r.h.Mem.Alloc(8*64, 64)
	// 4 rows of 6 doubles: 8 lanes max, rows of 6 → each chunk is one row.
	d := descriptor.New(base, arch.W8, descriptor.Load).
		Dim(0, 6, 1).Dim(0, 4, 6).MustBuild()
	r.configure(1, d)
	slot, _ := r.e.StreamFor(1)
	for row := 0; row < 4; row++ {
		v := r.consume(1)
		if v.N != 6 {
			t.Fatalf("row %d: %d lanes, want 6", row, v.N)
		}
		if !v.EndsDim0() {
			t.Fatalf("row %d: missing dim-0 end flag", row)
		}
		r.e.CommitConsume(slot, v.Seq)
	}
}

func TestSpeculativeConsumeAndSquashReusesData(t *testing.T) {
	r := newRig(t, DefaultConfig())
	base := r.h.Mem.Alloc(4*64, 64)
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = float64(i)
	}
	r.fillFloats(base, arch.W4, vals)
	d := descriptor.New(base, arch.W4, descriptor.Load).Linear(64, 1).MustBuild()
	r.configure(2, d)
	slot, _ := r.e.StreamFor(2)

	v1 := r.consume(2)
	v2 := r.consume(2)
	reqsBefore := r.e.Stats.LineRequests
	// Mis-speculation: the second consume is squashed and replayed.
	r.e.Unconsume(slot, v2.PrevEnd, v2.PrevLast)
	v2b := r.consume(2)
	if v2b.Seq != v2.Seq || v2b.Data.F(0) != v2.Data.F(0) {
		t.Fatalf("replayed chunk differs: seq %d vs %d", v2b.Seq, v2.Seq)
	}
	if r.e.Stats.LineRequests != reqsBefore {
		t.Fatalf("squash triggered %d new line requests; buffered data must be re-used",
			r.e.Stats.LineRequests-reqsBefore)
	}
	r.e.CommitConsume(slot, v1.Seq)
	r.e.CommitConsume(slot, v2b.Seq)
}

func TestFIFODepthBoundsRunAhead(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FIFODepth = 2
	r := newRig(t, cfg)
	base := r.h.Mem.Alloc(4*1024, 64)
	d := descriptor.New(base, arch.W4, descriptor.Load).Linear(1024, 1).MustBuild()
	r.configure(3, d)
	for i := 0; i < 2000; i++ {
		r.tick()
	}
	if got := r.e.Stats.ChunksLoaded; got > 2 {
		t.Fatalf("engine generated %d chunks with nothing consumed; FIFO depth 2 must cap run-ahead", got)
	}
	if r.e.Stats.FIFOFullCycles == 0 {
		t.Fatal("expected FIFO-full stall cycles")
	}
}

func TestStoreStreamWritesAtCommit(t *testing.T) {
	r := newRig(t, DefaultConfig())
	base := r.h.Mem.Alloc(8*16, 64)
	d := descriptor.New(base, arch.W8, descriptor.Store).Linear(16, 1).MustBuild()
	r.configure(4, d)
	slot, _ := r.e.StreamFor(4)

	var views []ChunkView
	for len(views) < 2 {
		if v, ok := r.e.ReserveStore(slot); ok {
			views = append(views, v)
		} else {
			r.tick()
		}
	}
	for i, v := range views {
		lanes := make([]uint64, v.N)
		for l := range lanes {
			lanes[l] = isa.FloatBits(arch.W8, float64(i*8+l))
		}
		r.e.WriteStoreData(slot, v.Seq, isa.VecFrom(arch.W8, lanes))
	}
	// Before commit, memory is untouched.
	if got := r.h.Mem.ReadFloat(base, arch.W8); got != 0 {
		t.Fatalf("store leaked before commit: %v", got)
	}
	r.e.CommitStore(slot, views[0].Seq, r.now)
	r.e.CommitStore(slot, views[1].Seq, r.now)
	for i := 0; i < 16; i++ {
		if got := r.h.Mem.ReadFloat(base+uint64(i*8), arch.W8); got != float64(i) {
			t.Fatalf("elem %d = %v, want %d", i, got, i)
		}
	}
	// Drain the store lines.
	for i := 0; i < 1000 && r.e.StoresPending(); i++ {
		r.tick()
	}
	if r.e.StoresPending() {
		t.Fatal("store lines never drained")
	}
	if r.e.Stats.StoreLines == 0 {
		t.Fatal("no store lines counted")
	}
}

func TestStoreSquashRewindsReservation(t *testing.T) {
	r := newRig(t, DefaultConfig())
	base := r.h.Mem.Alloc(4*64, 64)
	d := descriptor.New(base, arch.W4, descriptor.Store).Linear(64, 1).MustBuild()
	r.configure(5, d)
	slot, _ := r.e.StreamFor(5)
	var v ChunkView
	for {
		var ok bool
		if v, ok = r.e.ReserveStore(slot); ok {
			break
		}
		r.tick()
	}
	r.e.Unconsume(slot, v.PrevEnd, v.PrevLast)
	v2, ok := r.e.ReserveStore(slot)
	if !ok || v2.Seq != v.Seq {
		t.Fatalf("re-reservation got seq %d, want %d", v2.Seq, v.Seq)
	}
}

func TestIndirectGatherStream(t *testing.T) {
	r := newRig(t, DefaultConfig())
	aBase := r.h.Mem.Alloc(4*100, 64)
	idxBase := r.h.Mem.Alloc(8*12, 64)
	for i := 0; i < 100; i++ {
		r.h.Mem.WriteFloat(aBase+uint64(i*4), arch.W4, float64(i)*10)
	}
	idx := []uint64{5, 17, 3, 99, 0, 42, 7, 7, 23, 56, 11, 2}
	r.fillInts(idxBase, arch.W8, idx)

	// u6: index stream (engine-consumed); u7: gather A[idx[i]].
	di := descriptor.New(idxBase, arch.W8, descriptor.Load).Linear(int64(len(idx)), 1).MustBuild()
	r.configure(6, di)
	dg := descriptor.New(aBase, arch.W4, descriptor.Load).
		Dim(0, int64(len(idx)), 0).
		Indirect(descriptor.TargetOffset, descriptor.SetValue, 6).
		MustBuild()
	r.configure(7, dg)
	slot, _ := r.e.StreamFor(7)
	v := r.consume(7)
	if v.N != len(idx) {
		t.Fatalf("gather chunk N=%d want %d", v.N, len(idx))
	}
	for i, ix := range idx {
		if got := v.Data.F(i); got != float64(ix)*10 {
			t.Fatalf("gather lane %d = %v, want %v", i, got, float64(ix)*10)
		}
	}
	r.e.CommitConsume(slot, v.Seq)
}

func TestIndirectTimingPacedByOrigin(t *testing.T) {
	// The gather chunk must not become ready before the origin stream's
	// index data has arrived in its FIFO.
	r := newRig(t, DefaultConfig())
	aBase := r.h.Mem.Alloc(4*64, 64)
	idxBase := r.h.Mem.Alloc(8*16, 64)
	idx := make([]uint64, 16)
	r.fillInts(idxBase, arch.W8, idx)
	di := descriptor.New(idxBase, arch.W8, descriptor.Load).Linear(16, 1).MustBuild()
	r.configure(8, di)
	dg := descriptor.New(aBase, arch.W4, descriptor.Load).
		Dim(0, 16, 0).
		Indirect(descriptor.TargetOffset, descriptor.SetValue, 8).
		MustBuild()
	r.configure(9, dg)
	slot, _ := r.e.StreamFor(9)
	// Immediately after configuration nothing can be ready: the origin's
	// lines have not returned from memory.
	if _, ok := r.e.ConsumeChunk(slot); ok {
		t.Fatal("gather chunk ready before origin data arrived")
	}
	v := r.consume(9)
	if v.N != 16 {
		t.Fatalf("gather chunk N=%d", v.N)
	}
}

func TestStreamRenamingAllowsReconfiguration(t *testing.T) {
	r := newRig(t, DefaultConfig())
	base1 := r.h.Mem.Alloc(4*16, 64)
	base2 := r.h.Mem.Alloc(4*16, 64)
	r.fillFloats(base1, arch.W4, []float64{1, 1, 1, 1})
	r.fillFloats(base2, arch.W4, []float64{2, 2, 2, 2})
	d1 := descriptor.New(base1, arch.W4, descriptor.Load).Linear(4, 1).MustBuild()
	d2 := descriptor.New(base2, arch.W4, descriptor.Load).Linear(4, 1).MustBuild()
	r.configure(10, d1)
	slotA, _ := r.e.StreamFor(10)
	// Reconfigure u10 while the first stream still exists (renamed).
	r.configure(10, d2)
	slotB, _ := r.e.StreamFor(10)
	if slotA == slotB {
		t.Fatal("reconfiguration must allocate a new physical stream")
	}
	// The old stream is still consumable through its slot; the new mapping
	// reads the new data.
	v := r.consume(10)
	if v.Data.F(0) != 2 {
		t.Fatalf("new stream reads %v, want 2", v.Data.F(0))
	}
	if vOld, ok := r.e.ConsumeChunk(slotA); ok && vOld.Consumed {
		if vOld.Data.F(0) != 1 {
			t.Fatalf("old stream reads %v, want 1", vOld.Data.F(0))
		}
	}
}

func TestConfigSquashRestoresSAT(t *testing.T) {
	r := newRig(t, DefaultConfig())
	base := r.h.Mem.Alloc(4*16, 64)
	d := descriptor.New(base, arch.W4, descriptor.Load).Linear(4, 1).MustBuild()
	r.configure(11, d)
	slotA, _ := r.e.StreamFor(11)

	// Speculatively reconfigure, then squash the whole config window.
	var toks []*ConfigToken
	for _, in := range isa.SCfgParts(11, d) {
		tok, _ := r.e.RenameConfigPart(in.Cfg)
		toks = append(toks, tok)
	}
	for i := 0; i < 50; i++ {
		r.tick()
	}
	slotB, _ := r.e.StreamFor(11)
	if slotB == slotA {
		t.Fatal("speculative config did not activate")
	}
	for i := len(toks) - 1; i >= 0; i-- {
		r.e.SquashConfigPart(toks[i])
	}
	slotC, ok := r.e.StreamFor(11)
	if !ok || slotC != slotA {
		t.Fatalf("SAT not restored: slot %d ok=%v, want %d", slotC, ok, slotA)
	}
}

func TestAutoReleaseAfterCompletion(t *testing.T) {
	r := newRig(t, DefaultConfig())
	base := r.h.Mem.Alloc(4*8, 64)
	d := descriptor.New(base, arch.W4, descriptor.Load).Linear(8, 1).MustBuild()
	r.configure(12, d)
	slot, _ := r.e.StreamFor(12)
	v := r.consume(12)
	if !v.Last {
		t.Fatal("single-chunk stream must be Last")
	}
	r.e.CommitConsume(slot, v.Seq)
	for i := 0; i < 50; i++ {
		r.tick()
	}
	if _, ok := r.e.StreamFor(12); ok {
		t.Fatal("completed stream not released")
	}
	if end, last := r.e.LastFlags(12); !last || end == 0 {
		t.Fatal("released stream lost its final flags")
	}
	if r.e.ActiveStreams() != 0 {
		t.Fatalf("ActiveStreams=%d", r.e.ActiveStreams())
	}
}

func TestStopReleasesStream(t *testing.T) {
	r := newRig(t, DefaultConfig())
	base := r.h.Mem.Alloc(4*1024, 64)
	d := descriptor.New(base, arch.W4, descriptor.Load).Linear(1024, 1).MustBuild()
	r.configure(13, d)
	r.e.Stop(13)
	if _, ok := r.e.StreamFor(13); ok {
		t.Fatal("stopped stream still mapped")
	}
	// Engine keeps ticking without touching the released entry.
	for i := 0; i < 100; i++ {
		r.tick()
	}
}

func TestSuspendResume(t *testing.T) {
	r := newRig(t, DefaultConfig())
	base := r.h.Mem.Alloc(4*256, 64)
	vals := make([]float64, 256)
	for i := range vals {
		vals[i] = float64(i)
	}
	r.fillFloats(base, arch.W4, vals)
	d := descriptor.New(base, arch.W4, descriptor.Load).Linear(256, 1).MustBuild()
	r.configure(14, d)
	slot, _ := r.e.StreamFor(14)
	v := r.consume(14)
	r.e.CommitConsume(slot, v.Seq)

	susUndo := r.e.RenameSuspend(14)
	_ = susUndo
	if _, ok := r.e.StreamFor(14); ok {
		t.Fatal("suspended stream must unmap the register")
	}
	r.e.RenameResume(14)
	slot2, ok := r.e.StreamFor(14)
	if !ok || slot2 != slot {
		t.Fatal("resume must remap the same stream")
	}
	v2 := r.consume(14)
	if v2.Data.F(0) != 16 {
		t.Fatalf("resumed stream reads %v, want 16", v2.Data.F(0))
	}
}

func TestContextSaveRestore(t *testing.T) {
	r := newRig(t, DefaultConfig())
	base := r.h.Mem.Alloc(4*64, 64)
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = float64(i) + 0.5
	}
	r.fillFloats(base, arch.W4, vals)
	d := descriptor.New(base, arch.W4, descriptor.Load).Linear(64, 1).MustBuild()
	r.configure(15, d)
	slot, _ := r.e.StreamFor(15)
	v := r.consume(15)
	r.e.CommitConsume(slot, v.Seq)

	ctxs, bytes := r.e.SaveContext()
	if len(ctxs) != 1 {
		t.Fatalf("saved %d streams, want 1", len(ctxs))
	}
	if bytes != d.StateBytes() {
		t.Fatalf("context size %d, want %d", bytes, d.StateBytes())
	}
	r.e.DropAll()
	if r.e.ActiveStreams() != 0 {
		t.Fatal("DropAll left streams")
	}
	// Restore on a fresh engine (new "process-in" after context switch).
	r.e.RestoreContext(ctxs)
	slot2, ok := r.e.StreamFor(15)
	if !ok {
		t.Fatal("restored stream not mapped")
	}
	var v2 ChunkView
	delivered := false
	for i := 0; i < 20000 && !delivered; i++ {
		v2, delivered = r.e.ConsumeChunk(slot2)
		r.tick()
	}
	if !delivered {
		t.Fatal("restored stream never delivered")
	}
	if v2.Data.F(0) != 16.5 {
		t.Fatalf("restored stream resumes at %v, want 16.5", v2.Data.F(0))
	}
}

func TestPageFaultFlagsChunk(t *testing.T) {
	r := newRig(t, DefaultConfig())
	base := r.h.Mem.Alloc(4*16, arch.PageSize)
	// Pattern crosses into an unmapped page.
	r.h.Mem.UnmapPage(base + arch.PageSize)
	n := int64(arch.PageSize/4 + 8) // 8 elements past the page end
	d := descriptor.New(base, arch.W4, descriptor.Load).Linear(n, 1).MustBuild()
	r.configure(16, d)
	slot, _ := r.e.StreamFor(16)
	sawFault := false
	for i := int64(0); i < n; i += 16 {
		v := r.consume(16)
		if v.Fault {
			sawFault = true
			if v.FaultAddr < base+arch.PageSize {
				t.Fatalf("fault address %#x inside mapped page", v.FaultAddr)
			}
			break
		}
		r.e.CommitConsume(slot, v.Seq)
	}
	if !sawFault {
		t.Fatal("no chunk flagged the page fault")
	}
	if r.e.Stats.PageFaults == 0 {
		t.Fatal("fault not counted")
	}
	// OS maps the page; recovery reloads from the commit point and the
	// stream completes cleanly.
	r.h.Mem.MapPage(base + arch.PageSize)
	r.h.TLB.Flush()
	r.e.ReloadFromCommit(slot)
	for {
		v := r.consume(16)
		if v.Fault {
			t.Fatal("fault persisted after reload")
		}
		if !v.Consumed {
			break
		}
		r.e.CommitConsume(slot, v.Seq)
		if v.Last {
			break
		}
	}
}

func TestStreamCrossesPageBoundary(t *testing.T) {
	// Paper A2: streaming continues across mapped page boundaries.
	r := newRig(t, DefaultConfig())
	n := int64(2*arch.PageSize/4 + 32)
	base := r.h.Mem.Alloc(int(n*4), arch.PageSize)
	d := descriptor.New(base, arch.W4, descriptor.Load).Linear(n, 1).MustBuild()
	r.configure(17, d)
	slot, _ := r.e.StreamFor(17)
	var total int64
	for {
		v := r.consume(17)
		if !v.Consumed {
			t.Fatal("stream ended early")
		}
		total += int64(v.N)
		r.e.CommitConsume(slot, v.Seq)
		if v.Last {
			break
		}
	}
	if total != n {
		t.Fatalf("streamed %d elements, want %d", total, n)
	}
	if r.e.Stats.PageFaults != 0 {
		t.Fatalf("unexpected faults: %d", r.e.Stats.PageFaults)
	}
}

func TestStoreMayOverlap(t *testing.T) {
	r := newRig(t, DefaultConfig())
	base := r.h.Mem.Alloc(4*100, 64)
	d := descriptor.New(base, arch.W4, descriptor.Store).Linear(100, 1).MustBuild()
	r.configure(18, d)
	slot, _ := r.e.StreamFor(18)
	// Nothing reserved yet: no uncommitted write exists, loads may pass.
	if r.e.StoreMayOverlap(base+40, 4, 1<<60) {
		t.Fatal("overlap reported with no reserved store chunk")
	}
	var v ChunkView
	for {
		var ok bool
		if v, ok = r.e.ReserveStore(slot); ok {
			break
		}
		r.tick()
	}
	if !r.e.StoreMayOverlap(base+40, 4, 1<<60) {
		t.Fatal("overlap with reserved store chunk not detected")
	}
	// A load renamed before the reservation (older stamp) is not ordered
	// after it.
	if r.e.StoreMayOverlap(base+40, 4, 0) {
		t.Fatal("overlap reported against a younger reservation")
	}
	if r.e.StoreMayOverlap(base+4*100+4096, 4, 1<<60) {
		t.Fatal("false overlap far beyond the stream footprint")
	}
	// Committing the chunk clears the hazard window.
	r.e.WriteStoreData(slot, v.Seq, isa.VecFrom(arch.W4, make([]uint64, v.N)))
	r.e.CommitStore(slot, v.Seq, r.now)
	if r.e.StoreMayOverlap(base+40, 4, 1<<60) {
		t.Fatal("overlap persists after commit")
	}
}

func TestCacheLevelBypass(t *testing.T) {
	run := func(level arch.CacheLevel) (l1miss, l2miss uint64) {
		cfg := DefaultConfig()
		cfg.ForceLevel = &level
		r := newRig(t, cfg)
		base := r.h.Mem.Alloc(4*1024, 64)
		d := descriptor.New(base, arch.W4, descriptor.Load).Linear(1024, 1).MustBuild()
		r.configure(19, d)
		slot, _ := r.e.StreamFor(19)
		for {
			v := r.consume(19)
			if !v.Consumed {
				break
			}
			r.e.CommitConsume(slot, v.Seq)
			if v.Last {
				break
			}
		}
		return r.h.L1D.Stats.Misses, r.h.L2.Stats.Misses
	}
	l1missL1, _ := run(arch.LevelL1)
	l1missL2, l2missL2 := run(arch.LevelL2)
	_, l2missMem := run(arch.LevelMem)
	if l1missL1 == 0 {
		t.Fatal("L1 streaming produced no L1 activity")
	}
	if l1missL2 != 0 {
		t.Fatalf("L2 streaming allocated in L1 (%d misses)", l1missL2)
	}
	if l2missL2 == 0 {
		t.Fatal("L2 streaming produced no L2 activity")
	}
	if l2missMem != 0 {
		t.Fatalf("DRAM streaming allocated in L2 (%d misses)", l2missMem)
	}
}

func TestLineCoalescing(t *testing.T) {
	r := newRig(t, DefaultConfig())
	base := r.h.Mem.Alloc(4*256, 64)
	d := descriptor.New(base, arch.W4, descriptor.Load).Linear(256, 1).MustBuild()
	r.configure(20, d)
	slot, _ := r.e.StreamFor(20)
	for {
		v := r.consume(20)
		if !v.Consumed {
			break
		}
		r.e.CommitConsume(slot, v.Seq)
		if v.Last {
			break
		}
	}
	// 256 contiguous words = 1 KB = 16 lines; coalescing must keep requests
	// at exactly one per line.
	if r.e.Stats.LineRequests != 16 {
		t.Fatalf("line requests %d, want 16", r.e.Stats.LineRequests)
	}
}

func TestStorageFootprint(t *testing.T) {
	table, mrq, fifos := StorageFootprint(DefaultConfig())
	// Paper §VI-C: Stream Table + SCROB ≈ 14 KB, MRQ 160 B, FIFOs ≈ 17 KB.
	if table < 13<<10 || table > 15<<10 {
		t.Errorf("table+SCROB = %d B, want ≈14 KB", table)
	}
	if mrq != 160 {
		t.Errorf("MRQ = %d B, want 160", mrq)
	}
	if fifos < 16<<10 || fifos > 18<<10 {
		t.Errorf("FIFOs = %d B, want ≈17 KB", fifos)
	}
	// Reduced configuration (§VI-C mitigation): 8 streams → much smaller.
	small := DefaultConfig()
	small.LogStreams = 8
	st, _, sf := StorageFootprint(small)
	if st+sf >= (table+fifos)/3 {
		t.Errorf("reduced config %d B not a large reduction from %d B", st+sf, table+fifos)
	}
}

func TestConfigWaitsForPendingStores(t *testing.T) {
	r := newRig(t, DefaultConfig())
	pending := true
	r.e.SyncStoresPending = func() bool { return pending }
	base := r.h.Mem.Alloc(4*16, 64)
	d := descriptor.New(base, arch.W4, descriptor.Load).Linear(16, 1).MustBuild()
	for _, in := range isa.SCfgParts(21, d) {
		r.e.RenameConfigPart(in.Cfg)
	}
	for i := 0; i < 50; i++ {
		r.tick()
	}
	slot, ok := r.e.StreamFor(21)
	if !ok {
		t.Fatal("SAT mapping must exist from rename onward")
	}
	if !r.e.Configuring(slot) {
		t.Fatal("input stream finished configuring while older stores pending")
	}
	if r.e.Stats.ConfigSyncStalls == 0 {
		t.Fatal("sync stalls not counted")
	}
	pending = false
	for i := 0; i < 50; i++ {
		r.tick()
	}
	if r.e.Configuring(slot) {
		t.Fatal("input stream never configured after stores drained")
	}
}
