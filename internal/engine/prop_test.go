package engine

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/isa"
)

// TestPropRandomAffineStreams generates random affine descriptors, streams
// them through a full engine+hierarchy, and checks three invariants:
// the consumed element count matches the descriptor's exact sequence, every
// consumed lane equals the backing-memory value at the corresponding
// address, and chunks never cross a dimension-0 boundary.
func TestPropRandomAffineStreams(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		r := newRig(t, DefaultConfig())

		// Random geometry over a dedicated arena.
		widths := []arch.ElemWidth{arch.W4, arch.W8}
		w := widths[rng.Intn(len(widths))]
		arena := r.h.Mem.Alloc(1<<16, arch.LineSize)
		for i := 0; i < (1<<16)/8; i++ {
			r.h.Mem.Write(arena+uint64(8*i), arch.W8, rng.Uint64())
		}
		b := descriptor.New(arena, w, descriptor.Load)
		dims := 1 + rng.Intn(3)
		span := int64(1)
		for k := 0; k < dims; k++ {
			size := int64(1 + rng.Intn(20))
			stride := int64(rng.Intn(5))
			if k == 0 && stride == 0 {
				stride = 1
			}
			b.Dim(int64(rng.Intn(3)), size, stride)
			span = span*size + 64
		}
		if span*int64(w) >= 1<<15 {
			continue // keep patterns inside the arena
		}
		d, err := b.Build()
		if err != nil {
			continue
		}
		want := descriptor.Sequence(d, nil)

		r.configure(0, d)
		slot, _ := r.e.StreamFor(0)
		var consumed int64
		lanes := arch.LanesFor(DefaultConfig().VecBytes, w)
		for {
			v := r.consume(0)
			if !v.Consumed {
				break
			}
			if v.N > lanes {
				t.Fatalf("trial %d: chunk with %d lanes > %d", trial, v.N, lanes)
			}
			for l := 0; l < v.N; l++ {
				e := want[consumed+int64(l)]
				if got, exp := v.Data.Lane(l), r.h.Mem.Read(e.Addr, w); got != exp {
					t.Fatalf("trial %d (%s): elem %d lane %d = %#x, want mem[%#x]=%#x",
						trial, d, consumed+int64(l), l, got, e.Addr, exp)
				}
				// A dim-0 boundary inside a chunk (before its final lane)
				// violates the padding rule.
				if e.EndsDim(0) && l != v.N-1 {
					t.Fatalf("trial %d (%s): dim-0 boundary inside a chunk at elem %d",
						trial, d, consumed+int64(l))
				}
			}
			consumed += int64(v.N)
			r.e.CommitConsume(slot, v.Seq)
			if v.Last {
				break
			}
		}
		if consumed != int64(len(want)) {
			t.Fatalf("trial %d (%s): consumed %d elements, want %d", trial, d, consumed, len(want))
		}
	}
}

// TestPropConsumeUnconsumeFuzz interleaves speculative consumes, random
// rollbacks and commits; the committed element sequence must equal the
// descriptor's exact sequence regardless of the speculation pattern.
func TestPropConsumeUnconsumeFuzz(t *testing.T) {
	trials := 25
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		r := newRig(t, DefaultConfig())
		n := 64 + rng.Intn(256)
		base := r.h.Mem.Alloc(4*n, arch.LineSize)
		for i := 0; i < n; i++ {
			r.h.Mem.Write(base+uint64(4*i), arch.W4, uint64(i)*3+1)
		}
		d := descriptor.New(base, arch.W4, descriptor.Load).Linear(int64(n), 1).MustBuild()
		r.configure(0, d)
		slot, _ := r.e.StreamFor(0)

		type rec struct {
			v ChunkView
		}
		var spec []rec // consumed, uncommitted
		var committed []uint64
		deadline := 0
		for len(committed) < n && deadline < 200000 {
			deadline++
			switch rng.Intn(4) {
			case 0, 1: // consume
				if v, ok := r.e.ConsumeChunk(slot); ok && v.Consumed {
					spec = append(spec, rec{v})
				} else {
					r.tick()
				}
			case 2: // squash the youngest speculative consume
				if len(spec) > 0 {
					last := spec[len(spec)-1]
					spec = spec[:len(spec)-1]
					r.e.Unconsume(slot, last.v.PrevEnd, last.v.PrevLast)
				}
			case 3: // commit the oldest
				if len(spec) > 0 {
					oldest := spec[0]
					spec = spec[1:]
					r.e.CommitConsume(slot, oldest.v.Seq)
					for l := 0; l < oldest.v.N; l++ {
						committed = append(committed, oldest.v.Data.Lane(l))
					}
				} else {
					r.tick()
				}
			}
		}
		if len(committed) != n {
			t.Fatalf("trial %d: committed %d of %d elements", trial, len(committed), n)
		}
		for i, got := range committed {
			if want := uint64(i)*3 + 1; got != want {
				t.Fatalf("trial %d: committed[%d] = %d, want %d", trial, i, got, want)
			}
		}
	}
}

// TestPropStoreStreamRoundTrip drives random store patterns: writing
// ascending values through a store stream must land them at exactly the
// descriptor's addresses.
func TestPropStoreStreamRoundTrip(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(11000 + trial)))
		r := newRig(t, DefaultConfig())
		arena := r.h.Mem.Alloc(1<<14, arch.LineSize)
		rows := int64(1 + rng.Intn(8))
		rowLen := int64(1 + rng.Intn(40))
		stride := rowLen + int64(rng.Intn(8))
		d := descriptor.New(arena, arch.W4, descriptor.Store).
			Dim(0, rowLen, 1).
			Dim(0, rows, stride).
			MustBuild()
		want := descriptor.Addresses(d, nil)
		r.configure(0, d)
		slot, _ := r.e.StreamFor(0)
		var next uint64
		for {
			v, ok := r.e.ReserveStore(slot)
			if !ok {
				r.tick()
				continue
			}
			if !v.Consumed {
				break
			}
			lanes := make([]uint64, v.N)
			for l := range lanes {
				lanes[l] = next
				next++
			}
			r.e.WriteStoreData(slot, v.Seq, vecFromRaw(lanes))
			r.e.CommitStore(slot, v.Seq, r.now)
			if v.Last {
				break
			}
		}
		if next != uint64(len(want)) {
			t.Fatalf("trial %d: stored %d elements, want %d", trial, next, len(want))
		}
		for i, a := range want {
			if got := r.h.Mem.Read(a, arch.W4); got != uint64(i) {
				t.Fatalf("trial %d: mem[%#x] = %d, want %d", trial, a, got, i)
			}
		}
	}
}

func vecFromRaw(lanes []uint64) isa.VecVal {
	return isa.VecFrom(arch.W4, lanes)
}
