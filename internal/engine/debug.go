package engine

import "fmt"

// DebugReqTrace, when set, observes each new line request (u, base, line,
// chunkOpen, pendingAddr).
var DebugReqTrace func(u int, base, line uint64, open bool, pend uint64)

// DumpStreams prints per-stream state (debugging helper).
func (e *Engine) DumpStreams() {
	for _, s := range e.entries {
		if s == nil || s.released || s.desc == nil && !s.configuring {
			continue
		}
		fmt.Printf("slot=%d u=%d cfg=%v done=%v total=%d(%v) commit=%d spec=%d gen=%d sawEnd=%v pendSt=%d kind=%v\n",
			s.slot, s.u, s.configuring, s.configDone, s.totalChunks, s.totalKnown,
			s.commitPos, s.specPos, s.genPos, s.coreSawEnd, s.pendingStoreLines, s.kind)
	}
}
