package engine

import (
	"fmt"
	"io"
	"os"
)

// DumpStreams writes per-stream state to w (debugging helper). A nil writer
// defaults to stderr so mid-run dumps never corrupt machine-readable stdout
// (e.g. uvebench -json). Line-request observation, formerly the ad-hoc
// DebugReqTrace hook, now flows through the trace.Recorder as EvLineRequest.
func (e *Engine) DumpStreams(w io.Writer) {
	if w == nil {
		w = os.Stderr
	}
	for _, s := range e.entries {
		if s == nil || s.released || s.desc == nil && !s.configuring {
			continue
		}
		fmt.Fprintf(w, "slot=%d u=%d cfg=%v done=%v total=%d(%v) commit=%d spec=%d gen=%d sawEnd=%v pendSt=%d kind=%v\n",
			s.slot, s.u, s.configuring, s.configDone, s.totalChunks, s.totalKnown,
			s.commitPos, s.specPos, s.genPos, s.coreSawEnd, s.pendingStoreLines, s.kind)
	}
}
