package engine

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// --- iterator lookahead ---

func (s *stream) peek() (descriptor.Elem, bool) {
	if !s.itHas && !s.itDone {
		e, ok := s.it.Next()
		if ok {
			s.itPend = e
			s.itHas = true
		} else {
			s.itDone = true
		}
	}
	return s.itPend, s.itHas
}

func (s *stream) pop() descriptor.Elem {
	e := s.itPend
	s.itHas = false
	return e
}

// --- generation (Stream Processing Modules, paper Fig 7.B) ---

// wantsGen reports whether the stream has address-generation work at the
// given cycle (an injected dimension-boundary pause defers it).
func (s *stream) wantsGen(now int64) bool {
	if s.released || s.suspended || s.genPauseUntil > now {
		return false
	}
	if s.itDone && !s.genStarted && !s.itHas {
		return false
	}
	return true
}

// genStep advances one stream by one SPM step: at most one new cache-line
// request, elements appended to the building chunk while they share that
// line, a one-cycle stall on dimension switches.
func (e *Engine) genStep(s *stream, now int64) {
	if s.dimSwitch {
		// Clearing the dim-switch stall is a real state change.
		e.activity++
		s.dimSwitch = false
		e.Stats.DimSwitchStalls++
		if e.tracing {
			e.rec.Emit(trace.Event{Cycle: now, Kind: trace.EvDimSwitch, Arg0: int64(s.slot)})
		}
		return
	}
	// The two tally-only stall states deliberately do NOT count as engine
	// activity: a full FIFO (or an MRQ with no room for the next line)
	// freezes the stream, and the charge per stalled cycle is a pure
	// function of that frozen state. The event scheduler may therefore
	// skip these cycles; SkipStallTallies adds the charges the elided
	// genSteps would have made.
	if s.genPos-s.commitPos >= int64(len(s.fifo)) {
		e.Stats.FIFOFullCycles++
		if e.tracing {
			e.rec.Emit(trace.Event{Cycle: now, Kind: trace.EvFIFOFull, Arg0: int64(s.slot)})
		}
		return
	}
	if e.genBlockedOnMRQ(s) {
		e.Stats.MRQFullCycles++
		if e.tracing {
			e.rec.Emit(trace.Event{Cycle: now, Kind: trace.EvMRQFull, Arg0: int64(s.slot)})
		}
		return
	}
	e.activity++
	c := &s.fifo[s.genPos%int64(len(s.fifo))]
	if !s.genStarted {
		if _, ok := s.peek(); !ok {
			s.finishGen()
			return
		}
		start := s.elemsGenerated()
		c.reset(s.genPos, start)
		s.genStarted = true
	}
	var stepLine uint64
	haveLine := false
	for {
		el, ok := s.peek()
		if !ok {
			// Only reachable for degenerate empty tails; close what we have.
			e.closeChunk(s, c, descriptor.Elem{End: ^uint16(0), Last: true})
			return
		}
		line := arch.LineOf(el.Addr)
		if s.kind == descriptor.Load {
			if !haveLine {
				if !e.ensureLine(s, line, now) {
					return // MRQ full: retry next cycle
				}
				stepLine = line
				haveLine = true
			} else if line != stepLine {
				return // next line next cycle; chunk stays open
			}
		}
		s.pop()
		e.placeElem(s, c, el)
		if c.n >= s.lanes || el.EndsDim(0) {
			e.closeChunk(s, c, el)
			if el.End != 0 && !el.Last {
				s.dimSwitch = true // switching descriptor dimensions costs +1 cycle
			}
			return
		}
	}
}

// genBlockedOnMRQ reports whether genStep on this stream would do nothing
// but charge one MRQFullCycles tally: generation is mid-pattern, the next
// element needs a line the stream cannot coalesce onto its last fetch, and
// the MRQ has no room. It mirrors exactly the first ensureLine call of
// genStep's line loop.
func (e *Engine) genBlockedOnMRQ(s *stream) bool {
	if !s.genStarted || s.kind != descriptor.Load || len(e.mrq) < e.cfg.MRQSize {
		return false
	}
	el, ok := s.peek()
	if !ok {
		return false
	}
	line := arch.LineOf(el.Addr)
	return !(s.lastLineState != 0 && s.lastLine == line)
}

// genFrozenKind classifies a wantsGen stream's tally-only frozen states.
type genFrozenKind int

const (
	genActive     genFrozenKind = iota // genStep would mutate real state
	genFrozenFIFO                      // full FIFO: tallies FIFOFullCycles
	genFrozenMRQ                       // full MRQ: tallies MRQFullCycles
)

// genFrozen classifies what genStep would do to this stream next cycle,
// following genStep's own check order (a pending dim-switch stall clears
// itself, so it is real work).
func (e *Engine) genFrozen(s *stream) genFrozenKind {
	if s.dimSwitch {
		return genActive
	}
	if s.genPos-s.commitPos >= int64(len(s.fifo)) {
		return genFrozenFIFO
	}
	if e.genBlockedOnMRQ(s) {
		return genFrozenMRQ
	}
	return genActive
}

// SkipStallTallies charges k more cycles of the engine's tally-only frozen
// generation states — what the elided Ticks' genSteps would have charged.
// Exact because the scheduler only skips when every candidate stream is
// frozen (NextEventAt), the frozen set cannot change without core, engine
// or hierarchy activity, and the per-cycle charge is a pure function of
// that set: all candidates charge when they fit in NumModules, otherwise
// NumModules of a single kind charge (mixed oversubscription is reported
// busy instead). The round-robin cursor advances too — schedule rotates it
// every cycle it sees candidates, frozen or not.
func (e *Engine) SkipStallTallies(now, k int64) {
	var fifoFrozen, mrqFrozen int64
	for _, s := range e.entries {
		if s == nil || s.released || s.desc == nil || !s.wantsGen(now) {
			continue
		}
		switch e.genFrozen(s) {
		case genFrozenFIFO:
			fifoFrozen++
		case genFrozenMRQ:
			mrqFrozen++
		}
	}
	total := fifoFrozen + mrqFrozen
	if total == 0 {
		return
	}
	if m := int64(e.cfg.NumModules); total > m {
		if fifoFrozen > 0 {
			fifoFrozen = m
		} else {
			mrqFrozen = m
		}
	}
	e.Stats.FIFOFullCycles += uint64(fifoFrozen * k)
	e.Stats.MRQFullCycles += uint64(mrqFrozen * k)
	e.rr += int(k)
}

// elemsGenerated counts elements placed into closed chunks so far.
func (s *stream) elemsGenerated() int64 {
	if s.genPos == 0 {
		return 0
	}
	prev := &s.fifo[(s.genPos-1)%int64(len(s.fifo))]
	return prev.startElem + int64(prev.n)
}

func (s *stream) finishGen() {
	if !s.totalKnown {
		s.totalChunks = s.genPos
		s.totalKnown = true
	}
}

// ensureLine guarantees a fetch exists (or completed) for the line; it
// returns false when the MRQ has no room for a new request.
func (e *Engine) ensureLine(s *stream, line uint64, now int64) bool {
	if s.lastLineState != 0 && s.lastLine == line {
		e.Stats.CoalescedReuses++
		return true
	}
	if len(e.mrq) >= e.cfg.MRQSize {
		e.Stats.MRQFullCycles++
		if e.tracing {
			e.rec.Emit(trace.Event{Cycle: now, Kind: trace.EvMRQFull, Arg0: int64(s.slot)})
		}
		return false
	}
	f := &lineFetch{line: line, slot: s.slot, epoch: s.epoch, level: s.level, pc: -(1000 + s.slot)}
	// Translation happens at the arbiter (paper Fig 7.A); a page fault
	// flags the affected elements instead of issuing a request.
	if _, fault := e.hier.TLB.Translate(line); fault {
		e.Stats.PageFaults++
		s.lastLine = line
		s.lastLineState = 2 // "complete", with fault
		s.lastFault = true
		return true
	}
	s.lastFault = false
	e.mrq = append(e.mrq, f)
	e.Stats.LineRequests++
	s.lineReqs++
	if e.tracing {
		e.rec.Emit(trace.Event{Cycle: now, Kind: trace.EvLineRequest, Arg0: int64(s.slot), Arg1: int64(line)})
	}
	s.lastLine = line
	s.lastLineState = 1
	s.lastFetch = f
	return true
}

// placeElem appends one element to the building chunk, wiring its data
// availability to the pending line fetch when needed.
func (e *Engine) placeElem(s *stream, c *chunk, el descriptor.Elem) {
	lane := c.n
	e.sanTouchElem(s, el.Addr)
	c.addrs = append(c.addrs, el.Addr)
	c.data = append(c.data, 0)
	c.n++
	if s.kind != descriptor.Load {
		return
	}
	switch {
	case s.lastFault:
		c.fault = true
		c.faultAddr = el.Addr
	case s.lastLineState == 2:
		c.data[lane] = e.hier.Mem.Read(el.Addr, s.w)
	default:
		s.lastFetch.waiters = append(s.lastFetch.waiters, laneRef{seq: c.seq, lane: lane, addr: el.Addr})
		c.pendLines++
	}
}

func (e *Engine) closeChunk(s *stream, c *chunk, el descriptor.Elem) {
	c.end = el.End
	c.last = el.Last
	c.closed = true
	c.originNeed = append(c.originNeed[:0], s.originCum...)
	s.genStarted = false
	s.genPos++
	if e.tracing {
		e.rec.Emit(trace.Event{
			Cycle: e.now, Kind: trace.EvChunkProduced,
			Arg0: int64(s.slot), Arg1: c.seq, Arg2: int64(c.n),
		})
	}
	if el.Last {
		s.totalChunks = s.genPos
		s.totalKnown = true
	}
	if e.inj != nil && c.end != 0 && !c.last {
		// Adversarial suspend/resume: pause generation right at a descriptor
		// dimension boundary, while dimension-switch state is in flight.
		if d, ok := e.inj.SuspendAtDimBoundary(); ok {
			s.genPauseUntil = e.now + d
			if e.tracing {
				e.rec.Emit(trace.Event{Cycle: e.now, Kind: trace.EvInject, Arg0: trace.InjSuspend, Arg1: int64(s.slot), Arg2: d})
			}
		}
	}
	if s.kind == descriptor.Load {
		e.Stats.ChunksLoaded++
		e.Stats.ElementsLoaded += uint64(c.n)
	} else {
		e.Stats.ChunksStored++
		// Store addresses are translated when generated; faults surface
		// when the chunk is reserved/committed.
		seen := map[uint64]bool{}
		for _, a := range c.addrs {
			l := arch.LineOf(a)
			if seen[l] {
				continue
			}
			seen[l] = true
			if _, fault := e.hier.TLB.Translate(l); fault {
				e.Stats.PageFaults++
				c.fault = true
				c.faultAddr = a
			}
		}
		// Settle origin debt for the origins this store stream gathers from.
	}
	s.settleOrigins()
}

// settleOrigins releases origin FIFO elements consumed by this stream's
// generation up to the last closed chunk.
func (s *stream) settleOrigins() {
	for i, os := range s.originRefs {
		if s.originCum[i] > os.settledElems {
			os.settledElems = s.originCum[i]
		}
	}
}

// delivered returns how many leading elements of the stream have timing
// data available (committed plus the ready FIFO prefix).
func (s *stream) delivered() int64 {
	n := s.committedElems
	for seq := s.commitPos; seq < s.genPos; seq++ {
		c := &s.fifo[seq%int64(len(s.fifo))]
		if !c.loadReady() {
			break
		}
		n += int64(c.n)
	}
	return n
}

// originsDelivered reports whether all origin values the chunk depends on
// have arrived in the origin streams' FIFOs (timing pacing of indirection).
func (e *Engine) originsDelivered(s *stream, c *chunk) bool {
	for i, os := range s.originRefs {
		if i >= len(c.originNeed) {
			break
		}
		if os.released {
			continue // a released origin was fully delivered by definition
		}
		if os.delivered() < c.originNeed[i] {
			return false
		}
	}
	return true
}

// --- core-facing speculative consume/produce (paper §IV-A) ---

var syntheticEnd = ChunkView{N: 0, End: ^uint16(0), Last: true, Consumed: false}

// CanConsume reports whether ConsumeChunk would succeed without consuming.
func (e *Engine) CanConsume(slot int) bool {
	s := e.entries[slot]
	if s == nil || s.released {
		return true
	}
	if s.totalKnown && s.specPos >= s.totalChunks {
		return true
	}
	if s.specPos >= s.genPos {
		return false
	}
	c := &s.fifo[s.specPos%int64(len(s.fifo))]
	return c.loadReady() && e.originsDelivered(s, c)
}

// CanReserve reports whether ReserveStore would succeed without reserving.
func (e *Engine) CanReserve(slot int) bool {
	s := e.entries[slot]
	if s == nil || s.released {
		return true
	}
	if s.totalKnown && s.specPos >= s.totalChunks {
		return true
	}
	if s.specPos >= s.genPos {
		return false
	}
	c := &s.fifo[s.specPos%int64(len(s.fifo))]
	return c.closed && e.originsDelivered(s, c)
}

// ConsumeChunk hands the next load chunk to the rename stage. ok=false
// means the data has not arrived (rename must stall). Reads past the end of
// the stream return a synthetic empty chunk with Consumed=false.
func (e *Engine) ConsumeChunk(slot int) (ChunkView, bool) {
	s := e.entries[slot]
	if s == nil || s.released {
		return syntheticEnd, true
	}
	if s.totalKnown && s.specPos >= s.totalChunks {
		v := syntheticEnd
		v.PrevEnd, v.PrevLast = s.lastEnd, s.lastLast
		return v, true
	}
	if s.specPos >= s.genPos {
		return ChunkView{}, false
	}
	c := &s.fifo[s.specPos%int64(len(s.fifo))]
	if !c.loadReady() || !e.originsDelivered(s, c) {
		return ChunkView{}, false
	}
	v := ChunkView{
		Seq:       c.seq,
		Data:      isa.VecFrom(s.w, c.data[:c.n]),
		N:         c.n,
		End:       c.end,
		Last:      c.last,
		Fault:     c.fault,
		FaultAddr: c.faultAddr,
		Consumed:  true,
		PrevEnd:   s.lastEnd,
		PrevLast:  s.lastLast,
	}
	s.lastEnd, s.lastLast = c.end, c.last
	s.specPos++
	if e.tracing {
		e.rec.Emit(trace.Event{Cycle: e.now, Kind: trace.EvChunkConsumed, Arg0: int64(s.slot), Arg1: c.seq})
	}
	return v, true
}

// ReserveStore reserves the next addressed store chunk at rename. ok=false
// means addresses are not generated yet (rename must stall).
func (e *Engine) ReserveStore(slot int) (ChunkView, bool) {
	s := e.entries[slot]
	if s == nil || s.released {
		return syntheticEnd, true
	}
	if s.totalKnown && s.specPos >= s.totalChunks {
		v := syntheticEnd
		v.PrevEnd, v.PrevLast = s.lastEnd, s.lastLast
		return v, true
	}
	if s.specPos >= s.genPos {
		return ChunkView{}, false
	}
	c := &s.fifo[s.specPos%int64(len(s.fifo))]
	if !c.closed || !e.originsDelivered(s, c) {
		return ChunkView{}, false
	}
	v := ChunkView{
		Seq: c.seq, N: c.n, End: c.end, Last: c.last,
		Fault: c.fault, FaultAddr: c.faultAddr,
		Consumed: true, PrevEnd: s.lastEnd, PrevLast: s.lastLast,
	}
	e.reserveStamp++
	c.stamp = e.reserveStamp
	s.lastEnd, s.lastLast = c.end, c.last
	s.specPos++
	if e.tracing {
		e.rec.Emit(trace.Event{Cycle: e.now, Kind: trace.EvChunkConsumed, Arg0: int64(s.slot), Arg1: c.seq})
	}
	return v, true
}

// ReserveStamp returns the current reservation counter; a load renamed now
// is ordered after every reservation with a stamp ≤ this value.
func (e *Engine) ReserveStamp() int64 { return e.reserveStamp }

// Unconsume rewinds one speculative consume/reserve during a ROB walk; the
// buffered data stays valid and will be re-used without a new memory load
// (paper A3).
func (e *Engine) Unconsume(slot int, prevEnd uint16, prevLast bool) {
	s := e.entries[slot]
	if s == nil || s.released {
		return
	}
	if s.specPos > s.commitPos {
		s.specPos--
	}
	s.lastEnd, s.lastLast = prevEnd, prevLast
}

// WriteStoreData delivers computed lanes for a reserved store chunk (at the
// producing instruction's writeback).
func (e *Engine) WriteStoreData(slot int, seq int64, v isa.VecVal) {
	s := e.entries[slot]
	if s == nil || s.released || seq < s.commitPos || seq >= s.specPos {
		return
	}
	c := &s.fifo[seq%int64(len(s.fifo))]
	if c.seq != seq {
		return
	}
	n := c.n
	if v.N < n {
		n = v.N
	}
	for i := 0; i < n; i++ {
		c.data[i] = isa.Truncate(s.w, v.L[i])
	}
	c.written = true
}

// CommitConsume retires the oldest speculative consume, freeing its FIFO
// slot for further run-ahead.
func (e *Engine) CommitConsume(slot int, seq int64) {
	s := e.entries[slot]
	if s == nil || s.released {
		return
	}
	c := &s.fifo[s.commitPos%int64(len(s.fifo))]
	if c.seq != seq || s.commitPos >= s.specPos {
		panic(fmt.Sprintf("engine: commit order violation on u%d (seq %d, commit %d, spec %d)", s.u, seq, s.commitPos, s.specPos))
	}
	s.committedElems += int64(c.n)
	s.commitEnd, s.commitLast = c.end, c.last
	if c.end != 0 && !c.last {
		s.dimBounds++
	}
	if c.last {
		s.coreSawEnd = true
	}
	s.commitPos++
}

// CommitStore retires the oldest reserved store chunk: lanes are written to
// memory functionally and the covered lines are queued for draining through
// the engine's store port.
func (e *Engine) CommitStore(slot int, seq int64, now int64) {
	s := e.entries[slot]
	if s == nil || s.released {
		return
	}
	c := &s.fifo[s.commitPos%int64(len(s.fifo))]
	if c.seq != seq || s.commitPos >= s.specPos {
		panic(fmt.Sprintf("engine: store commit order violation on u%d (seq %d)", s.u, seq))
	}
	for i := 0; i < c.n; i++ {
		e.hier.Mem.Write(c.addrs[i], s.w, c.data[i])
	}
	seen := map[uint64]bool{}
	for _, a := range c.addrs {
		l := arch.LineOf(a)
		if seen[l] {
			continue
		}
		seen[l] = true
		e.storeQ = append(e.storeQ, storeLine{line: l, level: s.level, s: s})
		s.pendingStoreLines++
		e.Stats.StoreLines++
		s.storeLineCnt++
	}
	e.Stats.ElementsStored += uint64(c.n)
	s.committedElems += int64(c.n)
	s.commitEnd, s.commitLast = c.end, c.last
	if c.end != 0 && !c.last {
		s.dimBounds++
	}
	if c.last {
		s.coreSawEnd = true
	}
	s.commitPos++
}

// SpecFlags returns the rename-time stream flags (end-of-dimension mask and
// end-of-stream) observed after the most recent speculative consume, which
// is what UVE's stream-conditional branches test.
func (e *Engine) SpecFlags(slot int) (uint16, bool) {
	s := e.entries[slot]
	if s == nil || s.released {
		return ^uint16(0), true
	}
	return s.lastEnd, s.lastLast
}

// LastFlags returns the final flags of a stream that already terminated and
// was released (branches may still test it).
func (e *Engine) LastFlags(u int) (uint16, bool) {
	if u < 0 || u >= len(e.sat) {
		return ^uint16(0), true
	}
	f := e.lastFlags[u]
	return f.end, f.last
}

// --- stream control ---
//
// Suspend/resume/stop take effect at RENAME so that younger instructions
// observe the new stream association in program order (a suspended
// register immediately reads as a normal vector register); a ROB-walk
// squash restores the previous state, and the destructive release of
// ss.stop happens at commit.

// CtlUndo records the state a stream-control µOp replaced.
type CtlUndo struct {
	Slot          int
	PrevSuspended bool
	Valid         bool
}

// RenameSuspend pauses the stream mapped to u (speculatively).
func (e *Engine) RenameSuspend(u int) CtlUndo {
	if u < 0 || u >= len(e.sat) || e.sat[u] < 0 {
		return CtlUndo{}
	}
	s := e.entries[e.sat[u]]
	if s == nil || s.released {
		return CtlUndo{}
	}
	undo := CtlUndo{Slot: s.slot, PrevSuspended: s.suspended, Valid: true}
	s.suspended = true
	if e.tracing {
		e.rec.Emit(trace.Event{Cycle: e.now, Kind: trace.EvStreamSuspend, Arg0: int64(s.slot), Arg1: int64(s.u)})
	}
	return undo
}

// RenameResume reactivates a suspended stream (speculatively).
func (e *Engine) RenameResume(u int) CtlUndo {
	if u < 0 || u >= len(e.sat) || e.sat[u] < 0 {
		return CtlUndo{}
	}
	s := e.entries[e.sat[u]]
	if s == nil || s.released {
		return CtlUndo{}
	}
	undo := CtlUndo{Slot: s.slot, PrevSuspended: s.suspended, Valid: true}
	s.suspended = false
	if e.tracing {
		e.rec.Emit(trace.Event{Cycle: e.now, Kind: trace.EvStreamResume, Arg0: int64(s.slot), Arg1: int64(s.u)})
	}
	return undo
}

// RenameStop hides the stream from the SAT (speculatively); CommitStop
// performs the release.
func (e *Engine) RenameStop(u int) CtlUndo {
	return e.RenameSuspend(u)
}

// SquashCtl restores the state a stream-control µOp replaced.
func (e *Engine) SquashCtl(undo CtlUndo) {
	if !undo.Valid {
		return
	}
	if s := e.entries[undo.Slot]; s != nil && !s.released {
		s.suspended = undo.PrevSuspended
	}
}

// CommitStop releases a stopped stream's resources.
func (e *Engine) CommitStop(u int, undo CtlUndo) {
	if !undo.Valid {
		return
	}
	s := e.entries[undo.Slot]
	if s == nil || s.released {
		return
	}
	e.lastFlags[u] = flagPair{end: s.lastEnd, last: s.lastLast}
	e.releaseSlot(undo.Slot)
	if e.sat[u] == undo.Slot {
		e.sat[u] = -1
	}
}

// Stop releases the stream mapped to u immediately (non-pipelined callers:
// context switching, tests).
func (e *Engine) Stop(u int) {
	e.CommitStop(u, e.RenameStop(u))
}

// StoreMayOverlap reports whether a reserved-but-uncommitted output-stream
// chunk covers the given byte range; the LSQ holds conventional loads until
// the overlapping stream writes commit (paper §IV-A "Memory Coherence":
// "data written by an output stream can be loaded using a conventional load
// instruction"). Committed writes are already architecturally visible, and
// not-yet-reserved pattern elements belong to younger instructions, so only
// the [commit, spec) window matters.
func (e *Engine) StoreMayOverlap(addr uint64, size int, beforeStamp int64) bool {
	end := addr + uint64(size) - 1
	for _, s := range e.entries {
		if s == nil || s.released || s.desc == nil || s.kind != descriptor.Store {
			continue
		}
		// Cheap reject on the whole-pattern footprint first.
		if !s.unbounded && (addr > s.maxAddr || end < s.minAddr) {
			continue
		}
		w := uint64(s.w)
		for seq := s.commitPos; seq < s.specPos; seq++ {
			c := &s.fifo[seq%int64(len(s.fifo))]
			if c.seq != seq || c.stamp > beforeStamp {
				continue
			}
			for _, a := range c.addrs[:c.n] {
				if a <= end && a+w-1 >= addr {
					return true
				}
			}
		}
	}
	return false
}

// storeStreamsBusy reports whether any output stream still has uncommitted
// chunks. Committed chunks are architecturally visible (the functional
// write happens at commit), so a newly configured input stream may start
// while the timing drain of older store lines is still in flight.
func (e *Engine) storeStreamsBusy() bool {
	for _, s := range e.entries {
		if s == nil || s.released || s.desc == nil || s.kind != descriptor.Store {
			continue
		}
		if !s.totalKnown || s.commitPos < s.totalChunks {
			return true
		}
	}
	return false
}

// StoresPending reports whether any committed stream store is still
// draining to memory.
func (e *Engine) StoresPending() bool {
	if len(e.storeQ) > 0 {
		return true
	}
	for _, s := range e.entries {
		if s != nil && !s.released && s.pendingStoreLines > 0 {
			return true
		}
	}
	return false
}

// ActiveStreams counts configured, unreleased streams.
func (e *Engine) ActiveStreams() int {
	n := 0
	for _, s := range e.entries {
		if s != nil && !s.released && s.desc != nil {
			n++
		}
	}
	return n
}

// --- per-cycle operation ---

// Tick advances the engine by one cycle: SCROB retirement, stream
// scheduling across the processing modules, memory request issue (one load
// line and one store line per cycle — the engine's ports in Table I), and
// housekeeping.
func (e *Engine) Tick(now int64) {
	e.now = now
	e.processSCROB()
	e.schedule(now)
	e.issueMRQ(now)
	e.drainStore(now)
	e.advanceEngineConsumed()
	e.autoRelease()
	e.tallyOriginStalls(now)
}

// tallyOriginStalls charges one cycle per indirect stream whose head chunk
// is otherwise ready but waiting for origin-stream data to be delivered —
// the origin-stall component of the Fig 8.C breakdown. (Before this pass,
// Stats.OriginStallCycles was declared but never incremented.)
func (e *Engine) tallyOriginStalls(now int64) {
	for _, s := range e.entries {
		if !e.originStalled(s) {
			continue
		}
		e.Stats.OriginStallCycles++
		if e.tracing {
			e.rec.Emit(trace.Event{Cycle: now, Kind: trace.EvOriginStall, Arg0: int64(s.slot)})
		}
	}
}

// originStalled reports whether the stream's head chunk is ready but waiting
// on origin delivery — the condition tallyOriginStalls charges each cycle.
// NextEventAt shares it so cycles that would tally are never skipped.
func (e *Engine) originStalled(s *stream) bool {
	if s == nil || s.released || s.desc == nil || len(s.originRefs) == 0 {
		return false
	}
	if s.specPos >= s.genPos {
		return false
	}
	c := &s.fifo[s.specPos%int64(len(s.fifo))]
	ready := c.closed
	if s.kind == descriptor.Load {
		ready = c.loadReady()
	}
	return ready && !e.originsDelivered(s, c)
}

// schedule picks the NumModules streams with the lowest FIFO occupancy
// (paper: "streams with lower FIFO occupancy take precedence") and runs one
// generation step on each.
func (e *Engine) schedule(now int64) {
	var cand []*stream
	for _, s := range e.entries {
		if s != nil && s.desc != nil && s.wantsGen(now) {
			cand = append(cand, s)
		}
	}
	if len(cand) == 0 {
		return
	}
	rr := e.rr
	e.rr++
	sort.SliceStable(cand, func(i, j int) bool {
		oi, oj := cand[i].occupancy(), cand[j].occupancy()
		if oi != oj {
			return oi < oj
		}
		return (cand[i].slot+rr)%len(e.entries) < (cand[j].slot+rr)%len(e.entries)
	})
	n := e.cfg.NumModules
	if n > len(cand) {
		n = len(cand)
	}
	for i := 0; i < n; i++ {
		e.genStep(cand[i], now)
	}
}

// issueMRQ sends pending line requests to the memory hierarchy, up to the
// engine's per-cycle load-port budget.
func (e *Engine) issueMRQ(now int64) {
	budget := e.cfg.LoadPorts
	if budget <= 0 {
		budget = 1
	}
	for _, f := range e.mrq {
		if budget == 0 {
			return
		}
		if f.issued {
			continue
		}
		if f.retryAt > now {
			continue // backing off after an injected NACK
		}
		if e.inj != nil {
			if backoff, nack := e.inj.NackLine(f.nacks); nack {
				f.nacks++
				f.retryAt = now + backoff
				if e.tracing {
					e.rec.Emit(trace.Event{Cycle: now, Kind: trace.EvInject, Arg0: trace.InjNack, Arg1: int64(f.slot), Arg2: int64(f.line)})
				}
				continue
			}
		}
		ff := f
		req := &mem.Req{Line: ff.line, MinLevel: ff.level, PC: ff.pc, Done: func(at int64) { e.lineArrived(ff, at) }}
		if !e.hier.Access(now, req) {
			return
		}
		ff.issued = true
		budget--
	}
}

func (e *Engine) lineArrived(f *lineFetch, now int64) {
	e.activity++
	for i, q := range e.mrq {
		if q == f {
			e.mrq = append(e.mrq[:i], e.mrq[i+1:]...)
			break
		}
	}
	s := e.entries[f.slot]
	if s == nil || s.epoch != f.epoch {
		return // stream was squashed/stopped; drop the data
	}
	for _, wr := range f.waiters {
		c := &s.fifo[wr.seq%int64(len(s.fifo))]
		if c.seq != wr.seq {
			continue
		}
		c.data[wr.lane] = e.hier.Mem.Read(wr.addr, s.w)
		c.pendLines--
	}
	if s.lastFetch == f {
		s.lastFetch = nil
		if s.lastLine == f.line {
			s.lastLineState = 2
		}
	}
}

// drainStore issues one committed store line per cycle through the engine's
// store port.
func (e *Engine) drainStore(now int64) {
	if len(e.storeQ) == 0 {
		return
	}
	sl := e.storeQ[0]
	req := &mem.Req{Line: sl.line, Write: true, MinLevel: storeLevel(sl.level)}
	if !e.hier.Access(now, req) {
		return
	}
	e.storeQ = e.storeQ[1:]
	sl.s.pendingStoreLines--
	e.activity++
}

// storeLevel maps a stream's configured level onto the store path. The
// paper's implementation issues stream stores to the L1; the Fig 11 sweep
// moves them with the configured level.
func storeLevel(l arch.CacheLevel) arch.CacheLevel { return l }

// advanceEngineConsumed commits chunks of origin streams as their values
// are settled by dependent streams' address generation.
func (e *Engine) advanceEngineConsumed() {
	for _, s := range e.entries {
		if s == nil || s.released || !s.engineConsumed {
			continue
		}
		for s.commitPos < s.genPos {
			c := &s.fifo[s.commitPos%int64(len(s.fifo))]
			if !c.loadReady() || c.startElem+int64(c.n) > s.settledElems {
				break
			}
			s.committedElems += int64(c.n)
			if c.end != 0 && !c.last {
				s.dimBounds++
			}
			if c.last {
				s.coreSawEnd = true
			}
			s.commitPos++
			e.activity++
			if s.specPos < s.commitPos {
				s.specPos = s.commitPos
			}
		}
	}
}

// autoRelease frees streams whose pattern has fully committed — the paper's
// termination "by committing an instruction that signals the completion of
// the streaming pattern" (§IV-A).
func (e *Engine) autoRelease() {
	for _, s := range e.entries {
		if s == nil || s.released || s.desc == nil {
			continue
		}
		if !s.configDone || !s.totalKnown || s.commitPos != s.totalChunks || s.pendingStoreLines > 0 {
			continue
		}
		if !s.coreSawEnd {
			continue
		}
		if e.sat[s.u] == s.slot {
			e.lastFlags[s.u] = flagPair{end: s.lastEnd, last: s.lastLast}
			e.sat[s.u] = -1
		}
		e.releaseSlot(s.slot)
		e.activity++
	}
}

// StorageFootprint returns the engine's storage cost in bytes, reproducing
// the §VI-C accounting: the Stream Table and SCROB, the Memory Request
// Queue (10 B entries) and the Load/Store FIFOs (vector chunk + flags per
// entry).
func StorageFootprint(cfg Config) (table, mrq, fifos int) {
	const dimBytes, modBytes, headerBytes = 24, 24, 48
	table = cfg.LogStreams*(descriptor.MaxDims*dimBytes+descriptor.MaxMods*modBytes+headerBytes) +
		cfg.SCROBSize*64
	mrq = cfg.MRQSize * 10
	fifos = cfg.LogStreams * cfg.FIFODepth * (cfg.VecBytes + 2)
	return table, mrq, fifos
}
