package engine

import (
	"fmt"

	"repro/internal/descriptor"
)

// StreamContext is the saved commit-point state of one stream: descriptor
// plus committed iteration position. Its serialized size is
// Descriptor.StateBytes() (32 B for 1-D patterns up to ~400 B for the
// maximum configuration, paper §IV-A "Context Switching").
type StreamContext struct {
	U               int
	Desc            *descriptor.Descriptor
	CommittedElems  int64
	CommittedChunks int64
	End             uint16
	Last            bool
	Suspended       bool
}

// SaveContext suspends all active streams and returns their commit-point
// state together with the total saved size in bytes. Prefetched FIFO data
// is deliberately not saved: resuming re-loads it (as the paper specifies).
func (e *Engine) SaveContext() ([]StreamContext, int) {
	var out []StreamContext
	bytes := 0
	// Origins must precede their dependents so RestoreContext can resolve
	// indirection; dependents reference origins that were configured first,
	// so ordering by slot-activation order is not enough — emit
	// engine-consumed streams first.
	emit := func(wantOrigin bool) {
		for u := range e.sat {
			slot := e.sat[u]
			if slot < 0 {
				continue
			}
			s := e.entries[slot]
			if s == nil || s.released || s.desc == nil || s.engineConsumed != wantOrigin {
				continue
			}
			out = append(out, StreamContext{
				U:               u,
				Desc:            s.desc.Clone(),
				CommittedElems:  s.committedElems,
				CommittedChunks: s.commitPos,
				End:             s.commitEnd,
				Last:            s.commitLast,
				Suspended:       s.suspended,
			})
			bytes += s.desc.StateBytes()
			s.suspended = true
		}
	}
	emit(true)
	emit(false)
	return out, bytes
}

// DropAll releases every stream (the old thread's streams after a context
// switch; their state lives in the saved contexts).
func (e *Engine) DropAll() {
	for u := range e.sat {
		e.Stop(u)
	}
}

// RestoreContext reconfigures streams from saved state and fast-forwards
// each to its committed position. All buffered data is regenerated (the
// paper: "all pre-fetched data in internal buffers is lost and must be
// re-loaded").
func (e *Engine) RestoreContext(ctxs []StreamContext) {
	for _, ctx := range ctxs {
		slot := e.allocAndConfigure(ctx.U, ctx.Desc)
		s := e.entries[slot]
		s.configDone = true
		s.commitPos = ctx.CommittedChunks
		s.specPos = ctx.CommittedChunks
		s.genPos = ctx.CommittedChunks
		s.committedElems = ctx.CommittedElems
		s.commitEnd, s.commitLast = ctx.End, ctx.Last
		s.lastEnd, s.lastLast = ctx.End, ctx.Last
		s.suspended = ctx.Suspended
		e.fastForward(s)
	}
}

// ReloadFromCommit discards all speculative and buffered state of a stream
// and regenerates from the committed position. Used for exception recovery
// (page faults) and resuming suspended streams after a context switch.
func (e *Engine) ReloadFromCommit(slot int) {
	s := e.entries[slot]
	if s == nil || s.released || s.desc == nil {
		return
	}
	s.epoch++ // orphan in-flight line fetches
	kept := e.mrq[:0]
	for _, f := range e.mrq {
		if f.slot != slot || f.issued {
			kept = append(kept, f)
		}
	}
	e.mrq = kept
	s.specPos = s.commitPos
	s.genPos = s.commitPos
	s.genStarted = false
	s.lastEnd, s.lastLast = s.commitEnd, s.commitLast
	e.fastForward(s)
}

// allocAndConfigure allocates a stream entry and immediately finalizes its
// descriptor (context restore bypasses the SCROB, as the OS would).
func (e *Engine) allocAndConfigure(u int, d *descriptor.Descriptor) int {
	if len(e.freeSlots) == 0 {
		panic("engine: stream table full during context restore")
	}
	slot := e.freeSlots[len(e.freeSlots)-1]
	e.freeSlots = e.freeSlots[:len(e.freeSlots)-1]
	var epoch uint64
	if old := e.entries[slot]; old != nil {
		epoch = old.epoch + 1
	}
	e.entries[slot] = &stream{
		slot: slot, epoch: epoch, u: u,
		kind: d.Kind, w: d.Width, level: d.Level,
		configuring: true,
	}
	e.sat[u] = slot
	e.configure(slot, d)
	return slot
}

// ReloadAllFromCommit rewinds every active stream to its committed state
// (precise-exception recovery: buffered data is re-loaded).
func (e *Engine) ReloadAllFromCommit() {
	for _, s := range e.entries {
		if s != nil && !s.released && s.desc != nil {
			e.ReloadFromCommit(s.slot)
		}
	}
}

// fastForward rebuilds the iterator (and indirection shadows) and replays
// the deterministic chunk packing up to the committed element count.
func (e *Engine) fastForward(s *stream) {
	if s.shadow != nil {
		for i, u := range s.originUs {
			s.shadow.its[u] = descriptor.NewIterator(s.originRefs[i].desc, nil)
		}
		s.shadow.owner = s
		for i := range s.originCum {
			s.originCum[i] = 0
		}
	}
	s.it = descriptor.NewIterator(s.desc, s.shadow)
	s.itHas = false
	s.itDone = false
	s.lastLineState = 0
	s.lastFetch = nil
	s.lastFault = false
	s.dimSwitch = false
	s.genPauseUntil = 0

	skipped, chunks, lanes := int64(0), int64(0), 0
	for skipped < s.committedElems {
		el, ok := s.peek()
		if !ok {
			panic(fmt.Sprintf("engine: fast-forward of u%d ran out of elements at %d/%d", s.u, skipped, s.committedElems))
		}
		s.pop()
		skipped++
		lanes++
		if lanes >= s.lanes || el.EndsDim(0) {
			chunks++
			lanes = 0
		}
	}
	if chunks != s.commitPos {
		panic(fmt.Sprintf("engine: fast-forward chunk mismatch on u%d: replayed %d, committed %d", s.u, chunks, s.commitPos))
	}
	s.settleOrigins()
}
