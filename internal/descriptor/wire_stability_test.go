package descriptor

import (
	"testing"

	"repro/internal/arch"
)

// TestEnumNumberingStable pins the numeric values of every enum the wire
// format (internal/wire) writes to disk. Reordering these constants would
// silently re-interpret existing blobs; this test makes the numbering an
// explicit contract.
func TestEnumNumberingStable(t *testing.T) {
	if Load != 0 || Store != 1 {
		t.Error("Kind numbering changed")
	}
	if TargetOffset != 0 || TargetSize != 1 || TargetStride != 2 {
		t.Error("Target numbering changed")
	}
	if Add != 0 || Sub != 1 || SetAdd != 2 || SetSub != 3 || SetValue != 4 {
		t.Error("Behavior numbering changed")
	}
	if MaxDims != 8 || MaxMods != 7 {
		t.Error("architected descriptor limits changed")
	}
	if arch.W1 != 1 || arch.W2 != 2 || arch.W4 != 4 || arch.W8 != 8 {
		t.Error("element widths are no longer their byte sizes")
	}
	if arch.LevelL1 != 0 || arch.LevelL2 != 1 || arch.LevelMem != 2 {
		t.Error("cache-level numbering changed")
	}
}
