package descriptor

import "fmt"

// This file implements the symbolic footprint abstraction used by the
// inter-stream dependence analyzer. A Footprint summarizes a descriptor's
// element address sequence at three precision tiers:
//
//   - exact: an ordered list of arithmetic runs (Span) that reproduces the
//     sequence element-for-element, built symbolically for modifier-free
//     descriptors and by budgeted enumeration for static-modifier ones;
//   - hull-only: just the [Min, Max] byte hull, when the exact decomposition
//     would exceed the span or enumeration budget (overlap queries against a
//     hull-only footprint answer disjoint or unknown, never overlapping);
//   - ⊤ (Top): nothing is known — indirect modifiers make the addresses
//     data-dependent, so any query answers unknown.
//
// Addresses are carried as signed byte offsets (int64): simulated memory
// sits far below 2^63 and signed arithmetic keeps the interval algebra free
// of wraparound case analysis.

// Span is one arithmetic run of element start addresses: Base, Base+Stride,
// ..., Base+(Trip-1)·Stride, in sequence order. Stride keeps its sign — the
// run is never normalized, because position queries depend on the order the
// elements are produced in. A single-element span has Stride 0.
type Span struct {
	Base   int64
	Stride int64
	Trip   int64
}

func (s Span) String() string {
	if s.Trip == 1 {
		return fmt.Sprintf("{%#x}", s.Base)
	}
	return fmt.Sprintf("{%#x,%+d,×%d}", s.Base, s.Stride, s.Trip)
}

// last returns the start address of the final element of the run.
func (s Span) last() int64 { return s.Base + (s.Trip-1)*s.Stride }

// hull returns the inclusive range [lo, hi] of element start addresses.
func (s Span) hull() (lo, hi int64) {
	lo, hi = s.Base, s.last()
	if lo > hi {
		lo, hi = hi, lo
	}
	return lo, hi
}

// firstIdx returns the smallest j in [0, Trip) with Base+j·Stride inside the
// open interval (lo, hi), i.e. the first element of the run whose start
// address falls in the interval; ok is false when none does.
func (s Span) firstIdx(lo, hi int64) (int64, bool) {
	if lo >= hi {
		return 0, false
	}
	if s.Stride == 0 {
		if s.Base > lo && s.Base < hi {
			return 0, true
		}
		return 0, false
	}
	var j int64
	if s.Stride > 0 {
		j = floorDiv(lo-s.Base, s.Stride) + 1 // first j with value > lo
	} else {
		j = floorDiv(s.Base-hi, -s.Stride) + 1 // first j with value < hi
	}
	if j < 0 {
		j = 0
	}
	if j >= s.Trip {
		return 0, false
	}
	if v := s.Base + j*s.Stride; v > lo && v < hi {
		return j, true
	}
	return 0, false
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// Footprint is the symbolic memory footprint of one stream descriptor.
type Footprint struct {
	// Top marks the ⊤ element: nothing is known about the addresses.
	Top bool
	// Reason explains a Top or hull-only footprint for diagnostics.
	Reason string
	// Width is the element width in bytes; each element covers
	// [addr, addr+Width).
	Width int64
	// Min and Max bound the element start addresses (valid when !Top and
	// Elems > 0).
	Min, Max int64
	// Elems is the total element count (valid when !Top).
	Elems int64
	// Spans is the exact sequence decomposition, nil for hull-only
	// footprints.
	Spans []Span
	// cum[i] is the sequence position of Spans[i]'s first element.
	cum []int64
}

// Budgets bounding footprint construction and overlap queries. Exceeding a
// budget degrades precision (hull-only or ⊤, and unknown overlap verdicts),
// never correctness.
const (
	// DefaultFootprintElems caps enumeration of static-modifier descriptors.
	DefaultFootprintElems = 1 << 21
	// maxFootprintSpans caps the exact decomposition's length.
	maxFootprintSpans = 1 << 14
	// defaultRelateBudget caps per-query element probes in Relate.
	defaultRelateBudget = 1 << 22
)

// Exact reports whether the footprint reproduces the sequence exactly.
func (f *Footprint) Exact() bool { return !f.Top && f.Spans != nil }

// Empty reports whether the stream provably touches no memory.
func (f *Footprint) Empty() bool { return !f.Top && f.Elems == 0 }

func (f *Footprint) String() string {
	switch {
	case f.Top:
		return fmt.Sprintf("⊤ (%s)", f.Reason)
	case f.Elems == 0:
		return "∅"
	case f.Spans == nil:
		return fmt.Sprintf("hull [%#x, %#x]+%d (%s)", f.Min, f.Max, f.Width, f.Reason)
	default:
		s := fmt.Sprintf("%d elems ×%dB in %d spans", f.Elems, f.Width, len(f.Spans))
		if len(f.Spans) <= 4 {
			for _, sp := range f.Spans {
				s += " " + sp.String()
			}
		}
		return s
	}
}

// NewFootprint computes the footprint of d. maxElems bounds enumeration work
// for static-modifier descriptors (≤ 0 selects DefaultFootprintElems).
func NewFootprint(d *Descriptor, maxElems int64) *Footprint {
	if maxElems <= 0 {
		maxElems = DefaultFootprintElems
	}
	w := int64(d.Width)
	if d.HasIndirect() {
		return &Footprint{Top: true, Width: w,
			Reason: fmt.Sprintf("indirect modifier (origin u%d) makes the addresses data-dependent", d.Indirect[0].Origin)}
	}
	if len(d.Static) == 0 {
		return affineFootprint(d, maxElems)
	}
	return enumFootprint(d, maxElems)
}

// affineFootprint handles modifier-free descriptors symbolically: the address
// of element (i0, ..., in) is Base + (O0 + i0·S0 + Σk≥1 (Ok+ik)·Sk)·Width,
// so each combination of outer indices contributes one arithmetic run of
// dimension-0, and the byte hull follows per-dimension from the stride signs
// without any enumeration.
func affineFootprint(d *Descriptor, maxElems int64) *Footprint {
	w := int64(d.Width)
	f := &Footprint{Width: w}
	total := int64(1)
	combos := int64(1)
	for k, dim := range d.Dims {
		if dim.Size <= 0 {
			return f // provably empty
		}
		if total > maxElems/dim.Size {
			total = maxElems + 1 // clamp: only compared against budgets
		} else {
			total *= dim.Size
		}
		if k >= 1 {
			if combos > maxElems/dim.Size {
				combos = maxElems + 1
			} else {
				combos *= dim.Size
			}
		}
	}
	f.Elems = total

	// Exact symbolic hull over element indices, one dimension at a time.
	eMin := d.Dims[0].Offset
	eMax := eMin
	if s := (d.Dims[0].Size - 1) * d.Dims[0].Stride; s < 0 {
		eMin += s
	} else {
		eMax += s
	}
	for _, dim := range d.Dims[1:] {
		a := dim.Offset * dim.Stride
		b := (dim.Offset + dim.Size - 1) * dim.Stride
		if a > b {
			a, b = b, a
		}
		eMin += a
		eMax += b
	}
	f.Min = int64(d.Base) + eMin*w
	f.Max = int64(d.Base) + eMax*w

	if combos > maxElems || combos > maxFootprintSpans*int64(len(d.Dims)+1) {
		f.Reason = fmt.Sprintf("%d outer-dimension combinations exceed the span budget", combos)
		return f // hull-only
	}

	// Walk the outer odometer in sequence order (dimension 1 fastest),
	// emitting one run per combination and coalescing adjacent runs.
	base := int64(d.Base)
	inner := d.Dims[0]
	outer := d.Dims[1:]
	idx := make([]int64, len(outer))
	spans := make([]Span, 0, 16)
	for {
		off := inner.Offset
		for k, dim := range outer {
			off += (dim.Offset + idx[k]) * dim.Stride
		}
		sp := Span{Base: base + off*w, Stride: inner.Stride * w, Trip: inner.Size}
		if sp.Trip == 1 {
			sp.Stride = 0
		}
		spans = appendRun(spans, sp)
		if len(spans) > maxFootprintSpans {
			f.Reason = "exact decomposition exceeds the span budget"
			return f // hull-only
		}
		k := 0
		for ; k < len(outer); k++ {
			idx[k]++
			if idx[k] < outer[k].Size {
				break
			}
			idx[k] = 0
		}
		if k == len(outer) {
			break
		}
	}
	f.Spans = spans
	f.finish()
	return f
}

// enumFootprint walks a static-modifier descriptor's exact sequence with the
// iterator, coalescing elements into runs as they stream past. Exceeding the
// element budget yields ⊤ — a partial hull would silently exclude the unseen
// tail.
func enumFootprint(d *Descriptor, maxElems int64) *Footprint {
	w := int64(d.Width)
	f := &Footprint{Width: w}
	it := NewIterator(d, nil)
	spans := make([]Span, 0, 16)
	hullOnly := false
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		if f.Elems >= maxElems {
			return &Footprint{Top: true, Width: w,
				Reason: fmt.Sprintf("footprint exceeds the %d-element enumeration budget", maxElems)}
		}
		addr := int64(e.Addr)
		if f.Elems == 0 {
			f.Min, f.Max = addr, addr
		} else {
			if addr < f.Min {
				f.Min = addr
			}
			if addr > f.Max {
				f.Max = addr
			}
		}
		f.Elems++
		if !hullOnly {
			spans = appendRun(spans, Span{Base: addr, Trip: 1})
			if len(spans) > maxFootprintSpans {
				hullOnly = true
				f.Reason = "exact decomposition exceeds the span budget"
			}
		}
	}
	if !hullOnly {
		f.Spans = spans
		f.finish()
	}
	return f
}

// appendRun appends a run to the decomposition, greedily merging it into the
// previous run when the two continue one arithmetic sequence. The merge is a
// heuristic — a missed merge costs spans, never correctness.
func appendRun(spans []Span, s Span) []Span {
	if n := len(spans); n > 0 {
		p := &spans[n-1]
		switch {
		case p.Trip == 1 && s.Trip == 1:
			*p = Span{Base: p.Base, Stride: s.Base - p.Base, Trip: 2}
			return spans
		case p.Trip > 1 && s.Trip == 1 && s.Base == p.Base+p.Stride*p.Trip:
			p.Trip++
			return spans
		case p.Trip == 1 && s.Trip > 1 && s.Base-p.Base == s.Stride:
			*p = Span{Base: p.Base, Stride: s.Stride, Trip: s.Trip + 1}
			return spans
		case p.Trip > 1 && s.Trip > 1 && s.Stride == p.Stride && s.Base == p.Base+p.Stride*p.Trip:
			p.Trip += s.Trip
			return spans
		}
	}
	return append(spans, s)
}

// finish precomputes the cumulative sequence positions of each span.
func (f *Footprint) finish() {
	f.cum = make([]int64, len(f.Spans))
	pos := int64(0)
	for i, s := range f.Spans {
		f.cum[i] = pos
		pos += s.Trip
	}
	f.Elems = pos
}

// FirstPos returns the sequence position of the first element whose start
// address lies in the open interval (lo, hi); ok is false when no element
// does. Requires an exact footprint.
func (f *Footprint) FirstPos(lo, hi int64) (int64, bool) {
	for i, s := range f.Spans {
		if j, ok := s.firstIdx(lo, hi); ok {
			return f.cum[i] + j, true
		}
	}
	return 0, false
}

// EachElem calls fn for every element in sequence order with its position and
// start address, stopping early when fn returns false. It reports whether the
// footprint was exact (and the walk therefore complete or deliberately
// stopped).
func (f *Footprint) EachElem(fn func(pos, addr int64) bool) bool {
	if !f.Exact() {
		return false
	}
	pos := int64(0)
	for _, s := range f.Spans {
		a := s.Base
		for j := int64(0); j < s.Trip; j++ {
			if !fn(pos, a) {
				return true
			}
			pos++
			a += s.Stride
		}
	}
	return true
}

// SameSequence reports whether two exact footprints produce the identical
// element sequence (same addresses in the same order, same width).
func (f *Footprint) SameSequence(g *Footprint) bool {
	if !f.Exact() || !g.Exact() || f.Width != g.Width || f.Elems != g.Elems || len(f.Spans) != len(g.Spans) {
		return false
	}
	for i := range f.Spans {
		if f.Spans[i] != g.Spans[i] {
			return false
		}
	}
	return true
}

// Overlap is the three-valued answer of a footprint intersection query.
type Overlap int

const (
	// OverlapUnknown means the query could not be decided (⊤, hull-only
	// with intersecting hulls, or budget exhaustion).
	OverlapUnknown Overlap = iota
	// OverlapDisjoint means the byte footprints provably never intersect.
	OverlapDisjoint
	// OverlapYes means some element byte ranges provably intersect.
	OverlapYes
)

func (o Overlap) String() string {
	switch o {
	case OverlapDisjoint:
		return "disjoint"
	case OverlapYes:
		return "overlapping"
	}
	return "unknown"
}

// Relate classifies the byte-interval overlap of two footprints. budget caps
// the number of element probes (≤ 0 selects a default); exhausting it
// degrades the answer to unknown.
func Relate(a, b *Footprint, budget int64) Overlap {
	if a.Empty() || b.Empty() {
		return OverlapDisjoint
	}
	if a.Top || b.Top {
		return OverlapUnknown
	}
	if a.Max+a.Width <= b.Min || b.Max+b.Width <= a.Min {
		return OverlapDisjoint
	}
	if a.Spans == nil || b.Spans == nil {
		return OverlapUnknown
	}
	if budget <= 0 {
		budget = defaultRelateBudget
	}
	for _, sa := range a.Spans {
		alo, ahi := sa.hull()
		for _, sb := range b.Spans {
			blo, bhi := sb.hull()
			if ahi+a.Width <= blo || bhi+b.Width <= alo {
				continue
			}
			hit, cost := spanOverlap(sa, a.Width, sb, b.Width, budget)
			if cost < 0 {
				return OverlapUnknown
			}
			budget -= cost
			if hit {
				return OverlapYes
			}
		}
	}
	return OverlapDisjoint
}

// spanOverlap probes whether any element of one span byte-overlaps any
// element of the other, iterating the shorter run and solving the other in
// O(1) per probe. cost is the probes spent, or -1 when it would exceed
// budget.
func spanOverlap(sa Span, wa int64, sb Span, wb int64, budget int64) (bool, int64) {
	if sa.Trip > sb.Trip {
		return spanOverlap(sb, wb, sa, wa, budget)
	}
	if sa.Trip > budget {
		return false, -1
	}
	a := sa.Base
	for j := int64(0); j < sa.Trip; j++ {
		// Element [a, a+wa) intersects [x, x+wb) iff x ∈ (a-wb, a+wa).
		if _, ok := sb.firstIdx(a-wb, a+wa); ok {
			return true, j + 1
		}
		a += sa.Stride
	}
	return false, sa.Trip
}

// RelateRange classifies the overlap of the footprint with the byte range
// [lo, hi) — the shape of a scalar memory access.
func (f *Footprint) RelateRange(lo, hi int64) Overlap {
	if hi <= lo || f.Empty() {
		return OverlapDisjoint
	}
	if f.Top {
		return OverlapUnknown
	}
	if f.Max+f.Width <= lo || hi <= f.Min {
		return OverlapDisjoint
	}
	if f.Spans == nil {
		return OverlapUnknown
	}
	for _, s := range f.Spans {
		if _, ok := s.firstIdx(lo-f.Width, hi); ok {
			return OverlapYes
		}
	}
	return OverlapDisjoint
}
