package descriptor

import (
	"maps"
	"math"

	"repro/internal/arch"
)

// OriginSource supplies values consumed by indirect modifiers. The streaming
// engine implements it on top of the origin stream's load FIFO; tests use
// SliceOrigin.
type OriginSource interface {
	// NextOrigin consumes and returns the next element of the given origin
	// stream. ok is false when the origin stream is exhausted.
	NextOrigin(stream int) (v uint64, ok bool)
}

// Elem is one generated stream element.
type Elem struct {
	// Addr is the element's byte address.
	Addr uint64
	// End has bit k set when this element completes the current run of
	// hierarchy level k. Bit 0 therefore marks the end of an innermost
	// (dimension 0) sweep — the boundary vector chunks never cross.
	End uint16
	// Last marks the final element of the whole stream.
	Last bool
}

// EndsDim reports whether the element completes the current run of level k.
func (e Elem) EndsDim(k int) bool { return e.End&(1<<uint(k)) != 0 }

// Iterator walks a descriptor's exact address sequence one element at a
// time, the way a Stream Processing Module's Descriptor Iterator does
// (paper Fig 7.B). It runs one element ahead internally so that every
// returned element carries its end-of-dimension flags.
type Iterator struct {
	desc  *Descriptor
	src   OriginSource
	base  int64
	width int64
	n     int // hierarchy levels, including virtual indirect levels

	orig []Dim // parameters as configured
	cur  []Dim // parameters after modifier applications
	idx  []int64

	statics []staticState

	started bool
	done    bool
	pending Elem
	carry   uint16
	emitted int64
}

type staticState struct {
	mod     StaticMod
	applied int64
}

// NewIterator builds an iterator over d. src may be nil when the descriptor
// has no indirect modifiers.
func NewIterator(d *Descriptor, src OriginSource) *Iterator {
	it := &Iterator{
		desc:  d,
		src:   src,
		base:  int64(d.Base),
		width: int64(d.Width),
		n:     d.Levels(),
		orig:  append([]Dim(nil), d.Dims...),
		cur:   append([]Dim(nil), d.Dims...),
	}
	it.idx = make([]int64, it.n)
	it.statics = make([]staticState, len(d.Static))
	for i, m := range d.Static {
		it.statics[i] = staticState{mod: m}
	}
	return it
}

// Clone returns an independent copy of the iterator state. The origin source
// is shared; callers that need origin replay must snapshot it separately.
func (it *Iterator) Clone() *Iterator {
	c := *it
	c.orig = append([]Dim(nil), it.orig...)
	c.cur = append([]Dim(nil), it.cur...)
	c.idx = append([]int64(nil), it.idx...)
	c.statics = append([]staticState(nil), it.statics...)
	return &c
}

// Done reports whether the sequence is exhausted.
func (it *Iterator) Done() bool { return it.done }

// Emitted returns how many elements have been produced so far.
func (it *Iterator) Emitted() int64 { return it.emitted }

// Width returns the element width in bytes.
func (it *Iterator) Width() arch.ElemWidth { return it.desc.Width }

// Next produces the next element of the sequence.
func (it *Iterator) Next() (Elem, bool) {
	if it.done {
		return Elem{}, false
	}
	if !it.started {
		it.started = true
		it.carry = 0
		if !it.enterFrom(it.n - 1) {
			it.done = true
			return Elem{}, false
		}
		it.pending = it.current()
	}
	out := it.pending
	it.carry = 0
	if it.stepFrom(0) {
		it.pending = it.current()
		out.End = it.carry
	} else {
		it.done = true
		out.End = it.allMask()
		out.Last = true
	}
	it.emitted++
	return out, true
}

func (it *Iterator) allMask() uint16 { return uint16(1)<<uint(it.n) - 1 }

// count returns the iteration count of a hierarchy level. Virtual levels
// (indirect modifiers beyond the last real dimension) are bounded only by
// their origin stream.
func (it *Iterator) count(lvl int) int64 {
	if lvl < len(it.cur) {
		return it.cur[lvl].Size
	}
	return math.MaxInt64
}

// enterFrom starts a fresh run of levels k..0. It returns false when the
// whole sequence is exhausted.
func (it *Iterator) enterFrom(k int) bool {
	for lvl := k; lvl >= 0; lvl-- {
		it.idx[lvl] = 0
		if it.count(lvl) <= 0 || !it.enterIteration(lvl) {
			// Empty run (zero size, or origin stream dry): the enclosing
			// level must advance instead.
			return it.stepFrom(lvl + 1)
		}
	}
	return true
}

// stepFrom advances the odometer starting at the given level, recording a
// carry bit for every level whose run completes. It returns false when the
// outermost level overflows (sequence exhausted).
func (it *Iterator) stepFrom(start int) bool {
	for lvl := start; lvl < it.n; lvl++ {
		it.idx[lvl]++
		if it.idx[lvl] < it.count(lvl) && it.enterIteration(lvl) {
			return it.enterFrom(lvl - 1)
		}
		it.carry |= 1 << uint(lvl)
	}
	return false
}

// enterIteration fires the modifiers bound to lvl at the start of one of its
// iterations: static modifiers accumulate into the level below, indirect
// modifiers consume one origin value each and set the level below. It
// returns false when an indirect origin stream is exhausted, which ends the
// bound level's run (the paper: the target's size follows the origin's).
func (it *Iterator) enterIteration(lvl int) bool {
	for i := range it.statics {
		s := &it.statics[i]
		if s.mod.Bound != lvl {
			continue
		}
		if s.mod.Count > 0 && s.applied >= s.mod.Count {
			continue
		}
		s.applied++
		p := it.param(s.mod.Bound-1, s.mod.Target)
		if s.mod.Behav == Add {
			*p += s.mod.Disp
		} else {
			*p -= s.mod.Disp
		}
	}
	for _, m := range it.desc.Indirect {
		if m.Bound != lvl {
			continue
		}
		v, ok := it.src.NextOrigin(m.Origin)
		if !ok {
			return false
		}
		tdim := m.Bound - 1
		if tdim < 0 {
			tdim = 0 // per-element gather retargets dimension 0 itself
		}
		p := it.param(tdim, m.Target)
		o := it.origParam(tdim, m.Target)
		switch m.Behav {
		case SetAdd:
			*p = o + int64(v)
		case SetSub:
			*p = o - int64(v)
		case SetValue:
			*p = int64(v)
		}
	}
	return true
}

func (it *Iterator) param(dim int, t Target) *int64 {
	d := &it.cur[dim]
	switch t {
	case TargetOffset:
		return &d.Offset
	case TargetSize:
		return &d.Size
	default:
		return &d.Stride
	}
}

func (it *Iterator) origParam(dim int, t Target) int64 {
	d := it.orig[dim]
	switch t {
	case TargetOffset:
		return d.Offset
	case TargetSize:
		return d.Size
	default:
		return d.Stride
	}
}

// current computes the byte address for the present odometer position:
// base + (O0 + i0·S0 + Σk≥1 (Ok+ik)·Sk) · width.
func (it *Iterator) current() Elem {
	eidx := it.cur[0].Offset + it.idx[0]*it.cur[0].Stride
	for k := 1; k < len(it.cur); k++ {
		eidx += (it.cur[k].Offset + it.idx[k]) * it.cur[k].Stride
	}
	return Elem{Addr: uint64(it.base + eidx*it.width)}
}

// Sequence materializes the full element sequence of d. Intended for tests
// and tooling; the streaming engine always iterates incrementally.
func Sequence(d *Descriptor, src OriginSource) []Elem {
	it := NewIterator(d, src)
	var out []Elem
	for {
		e, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

// Addresses materializes just the byte addresses of d's sequence.
func Addresses(d *Descriptor, src OriginSource) []uint64 {
	elems := Sequence(d, src)
	out := make([]uint64, len(elems))
	for i, e := range elems {
		out[i] = e.Addr
	}
	return out
}

// SliceOrigin is an OriginSource backed by in-memory value slices, keyed by
// origin stream number.
type SliceOrigin struct {
	Values map[int][]uint64
	pos    map[int]int
}

// NewSliceOrigin builds a SliceOrigin over the given per-stream values.
// The map is cloned so the origin's replay state cannot be changed by a
// caller mutating its own map afterwards.
func NewSliceOrigin(values map[int][]uint64) *SliceOrigin {
	return &SliceOrigin{Values: maps.Clone(values), pos: make(map[int]int)}
}

// NextOrigin implements OriginSource.
func (s *SliceOrigin) NextOrigin(stream int) (uint64, bool) {
	vs := s.Values[stream]
	p := s.pos[stream]
	if p >= len(vs) {
		return 0, false
	}
	s.pos[stream] = p + 1
	return vs[p], true
}
