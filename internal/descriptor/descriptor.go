// Package descriptor implements the hierarchical stream-descriptor model of
// UVE (paper §II): n-dimensional affine access patterns encoded as cascaded
// {Offset, Size, Stride} tuples, optionally altered by static modifiers
// {Target, Behavior, Displacement, Size} and indirect modifiers
// {Target, Behavior, StreamPointer}.
//
// A stream access is y(X) = base + (O0 + Σk ik·Sk + Σk>0 Ok·Sk) · width,
// with ik ∈ [0, Ek). Dimension 0 is the innermost dimension; its offset is
// an element displacement added to the byte base address (the paper folds the
// base into O0 — we keep them separate so modifiers can retarget O0 in
// element units, which is what indirection needs).
package descriptor

import (
	"fmt"
	"strings"

	"repro/internal/arch"
)

// Kind distinguishes load (input) from store (output) streams.
type Kind int

const (
	// Load streams move data from memory into the core.
	Load Kind = iota
	// Store streams move data from the core to memory.
	Store
)

func (k Kind) String() string {
	if k == Store {
		return "store"
	}
	return "load"
}

// Target selects which parameter of the affected dimension a modifier
// rewrites (paper §II-B2, §II-B3).
type Target int

const (
	// TargetOffset modifies the dimension's offset (element units).
	TargetOffset Target = iota
	// TargetSize modifies the dimension's element count.
	TargetSize
	// TargetStride modifies the dimension's stride.
	TargetStride
)

func (t Target) String() string {
	switch t {
	case TargetOffset:
		return "offset"
	case TargetSize:
		return "size"
	case TargetStride:
		return "stride"
	}
	return fmt.Sprintf("Target(%d)", int(t))
}

// Behavior is the modification operator. Add and Sub are cumulative and used
// by static modifiers; the Set* forms are used by indirect modifiers and are
// re-derived from the original parameter value on every application.
type Behavior int

const (
	// Add accumulates +Displacement into the target parameter.
	Add Behavior = iota
	// Sub accumulates -Displacement into the target parameter.
	Sub
	// SetAdd sets target = original + dynamic displacement.
	SetAdd
	// SetSub sets target = original - dynamic displacement.
	SetSub
	// SetValue sets target = dynamic displacement.
	SetValue
)

func (b Behavior) String() string {
	switch b {
	case Add:
		return "add"
	case Sub:
		return "sub"
	case SetAdd:
		return "set-add"
	case SetSub:
		return "set-sub"
	case SetValue:
		return "set-value"
	}
	return fmt.Sprintf("Behavior(%d)", int(b))
}

// Dim is one {Offset, Size, Stride} tuple, all in element units.
type Dim struct {
	Offset int64
	Size   int64
	Stride int64
}

// StaticMod is a static descriptor modifier {T, B, D, E} (paper §II-B2).
// It is bound to dimension Bound (≥1) and rewrites parameter Target of
// dimension Bound-1 on every iteration of dimension Bound, for at most
// Count applications (Count ≤ 0 means unlimited).
type StaticMod struct {
	Bound  int
	Target Target
	Behav  Behavior // Add or Sub
	Disp   int64
	Count  int64
}

// IndirectMod is an indirect descriptor modifier {T, B, P} (paper §II-B3).
// Each iteration of dimension Bound consumes one value from the origin
// stream Origin and sets parameter Target of dimension Bound-1 according to
// Behav (SetAdd, SetSub or SetValue). Two extensions of the binding rule
// realize the paper's scatter-gather support (F3):
//
//   - Bound == 0 fires once per element and retargets dimension 0 itself —
//     a per-element gather (A[B[i][j]], paper Fig 2.C), which the engine
//     packs into dense vector chunks.
//   - Bound == len(Dims) forms a virtual outer level whose trip count
//     follows the origin stream's length (the paper: "the indirection
//     modifier does not require any size parameter", Fig 3.B5).
type IndirectMod struct {
	Bound  int
	Target Target
	Behav  Behavior // SetAdd, SetSub or SetValue
	Origin int      // stream register number of the origin stream
}

// Descriptor is a fully configured stream pattern.
type Descriptor struct {
	Base     uint64 // byte base address
	Width    arch.ElemWidth
	Kind     Kind
	Level    arch.CacheLevel // memory level the stream operates over
	Dims     []Dim           // Dims[0] is innermost
	Static   []StaticMod
	Indirect []IndirectMod
}

// MaxDims and MaxMods bound descriptor complexity, matching the paper's
// implementation limit of 8 dimensions and 7 modifiers per stream (§III-A2).
const (
	MaxDims = 8
	MaxMods = 7
)

// Levels returns the number of hierarchy levels, counting virtual levels
// formed by indirect modifiers bound beyond the last real dimension.
func (d *Descriptor) Levels() int {
	n := len(d.Dims)
	for _, m := range d.Indirect {
		if m.Bound+1 > n {
			n = m.Bound + 1
		}
	}
	return n
}

// HasIndirect reports whether the descriptor uses any indirect modifier.
func (d *Descriptor) HasIndirect() bool { return len(d.Indirect) > 0 }

// Origins returns the stream register numbers this descriptor's indirect
// modifiers consume from, in configuration order.
func (d *Descriptor) Origins() []int {
	if len(d.Indirect) == 0 {
		return nil
	}
	out := make([]int, 0, len(d.Indirect))
	for _, m := range d.Indirect {
		out = append(out, m.Origin)
	}
	return out
}

// Validate checks the descriptor against the architected limits and basic
// well-formedness rules.
func (d *Descriptor) Validate() error {
	if !d.Width.Valid() {
		return fmt.Errorf("descriptor: invalid element width %d", int(d.Width))
	}
	if len(d.Dims) == 0 {
		return fmt.Errorf("descriptor: no dimensions")
	}
	if len(d.Dims) > MaxDims {
		return fmt.Errorf("descriptor: %d dimensions exceeds the limit of %d", len(d.Dims), MaxDims)
	}
	if n := len(d.Static) + len(d.Indirect); n > MaxMods {
		return fmt.Errorf("descriptor: %d modifiers exceeds the limit of %d", n, MaxMods)
	}
	levels := d.Levels()
	if levels > MaxDims {
		return fmt.Errorf("descriptor: %d levels (with virtual) exceeds the limit of %d", levels, MaxDims)
	}
	for i, m := range d.Static {
		if m.Bound < 1 || m.Bound >= levels {
			return fmt.Errorf("descriptor: static modifier %d bound to level %d, want 1..%d", i, m.Bound, levels-1)
		}
		if m.Behav != Add && m.Behav != Sub {
			return fmt.Errorf("descriptor: static modifier %d has non-static behavior %v", i, m.Behav)
		}
	}
	for i, m := range d.Indirect {
		if m.Bound < 0 || m.Bound >= levels+1 {
			return fmt.Errorf("descriptor: indirect modifier %d bound to level %d, want 0..%d", i, m.Bound, levels)
		}
		switch m.Behav {
		case SetAdd, SetSub, SetValue:
		default:
			return fmt.Errorf("descriptor: indirect modifier %d has non-indirect behavior %v", i, m.Behav)
		}
		if m.Origin < 0 {
			return fmt.Errorf("descriptor: indirect modifier %d has negative origin stream %d", i, m.Origin)
		}
	}
	return nil
}

// StateBytes returns the number of bytes needed to save this stream's
// committed iteration state for a context switch (paper §IV-A "Context
// Switching": 32 B for 1-D patterns up to 400 B for 8-D with 7 modifiers).
// Each additional dimension or modifier costs 26 B: packed parameters plus
// the iteration index/application counter.
func (d *Descriptor) StateBytes() int {
	n := 32 // base address, width/kind/level flags, dim-0 params and position
	n += (len(d.Dims) - 1) * 26
	n += (len(d.Static) + len(d.Indirect)) * 26
	return n
}

func (d *Descriptor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s.%s base=%#x %s", d.Kind, d.Width, d.Base, d.Level)
	for i, dim := range d.Dims {
		fmt.Fprintf(&b, " D%d{%d,%d,%d}", i, dim.Offset, dim.Size, dim.Stride)
	}
	for _, m := range d.Static {
		fmt.Fprintf(&b, " M@%d{%s,%s,%d,%d}", m.Bound, m.Target, m.Behav, m.Disp, m.Count)
	}
	for _, m := range d.Indirect {
		fmt.Fprintf(&b, " I@%d{%s,%s,u%d}", m.Bound, m.Target, m.Behav, m.Origin)
	}
	return b.String()
}

// Clone returns a deep copy of the descriptor.
func (d *Descriptor) Clone() *Descriptor {
	c := *d
	c.Dims = append([]Dim(nil), d.Dims...)
	c.Static = append([]StaticMod(nil), d.Static...)
	c.Indirect = append([]IndirectMod(nil), d.Indirect...)
	return &c
}

// Builder assembles descriptors with a fluent API mirroring the UVE stream
// configuration instruction sequence (ss.ld.sta / ss.app / ss.end, §III-B).
type Builder struct {
	d   Descriptor
	err error
}

// New starts a descriptor for a stream of elements of width w based at byte
// address base. The innermost dimension is supplied via the first Dim call.
func New(base uint64, w arch.ElemWidth, kind Kind) *Builder {
	return &Builder{d: Descriptor{Base: base, Width: w, Kind: kind, Level: arch.LevelL2}}
}

// Dim appends the next-outer dimension {offset, size, stride}.
func (b *Builder) Dim(offset, size, stride int64) *Builder {
	b.d.Dims = append(b.d.Dims, Dim{Offset: offset, Size: size, Stride: stride})
	return b
}

// Linear is shorthand for a one-dimensional pattern of size elements with
// the given stride, starting at the base address.
func (b *Builder) Linear(size, stride int64) *Builder { return b.Dim(0, size, stride) }

// Mod attaches a static modifier to the most recently added dimension: it
// fires on each iteration of that dimension and rewrites parameter t of the
// dimension below it. count ≤ 0 means unlimited applications.
func (b *Builder) Mod(t Target, behav Behavior, disp, count int64) *Builder {
	bound := len(b.d.Dims) - 1
	if bound < 1 {
		b.fail("static modifier requires at least two dimensions")
		return b
	}
	b.d.Static = append(b.d.Static, StaticMod{Bound: bound, Target: t, Behav: behav, Disp: disp, Count: count})
	return b
}

// Indirect attaches an indirect modifier to the most recently added
// dimension: each of its iterations consumes one value from origin and sets
// parameter t of the dimension below. When only the innermost dimension has
// been added, the modifier binds to dimension 0 and becomes a per-element
// gather.
func (b *Builder) Indirect(t Target, behav Behavior, origin int) *Builder {
	bound := len(b.d.Dims) - 1
	if bound < 0 {
		b.fail("indirect modifier requires a dimension")
		return b
	}
	b.d.Indirect = append(b.d.Indirect, IndirectMod{Bound: bound, Target: t, Behav: behav, Origin: origin})
	return b
}

// IndirectOuter appends a virtual outer level driven by the origin stream:
// for every origin value, parameter t of the current outermost dimension is
// set and the inner pattern replayed. The stream's length follows the
// origin stream's length (paper Fig 3.B5).
func (b *Builder) IndirectOuter(t Target, behav Behavior, origin int) *Builder {
	bound := b.d.Levels()
	b.d.Indirect = append(b.d.Indirect, IndirectMod{Bound: bound, Target: t, Behav: behav, Origin: origin})
	return b
}

// AtLevel routes the stream to the given memory level (so.cfg.memx).
func (b *Builder) AtLevel(l arch.CacheLevel) *Builder {
	b.d.Level = l
	return b
}

func (b *Builder) fail(msg string) {
	if b.err == nil {
		b.err = fmt.Errorf("descriptor builder: %s", msg)
	}
}

// Build validates and returns the descriptor.
func (b *Builder) Build() (*Descriptor, error) {
	if b.err != nil {
		return nil, b.err
	}
	d := b.d.Clone()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// MustBuild is Build that panics on error; intended for hand-written kernels
// whose patterns are fixed at compile time.
func (b *Builder) MustBuild() *Descriptor {
	d, err := b.Build()
	if err != nil {
		panic(err)
	}
	return d
}
