package descriptor_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/descriptor"
)

// fuzzDescriptor decodes the fuzzer's raw inputs into a bounded, valid
// descriptor: up to three dimensions with small sizes plus an optional
// static modifier, mirroring the shapes of the quick-check corpus. ok is
// false when the decoded parameters fail validation.
func fuzzDescriptor(o0, s0 int8, e0 uint8, o1, s1 int8, e1 uint8, o2, s2 int8, e2 uint8,
	modTarget, modBehav, modDisp, modCount uint8) (*descriptor.Descriptor, bool) {
	w := arch.W4
	if e0%2 == 1 {
		w = arch.W8
	}
	b := descriptor.New(1<<20, w, descriptor.Load)
	b.Dim(int64(o0%8), 1+int64(e0%12), int64(s0%8))
	ndims := 1
	if e1 > 0 {
		b.Dim(int64(o1%8), 1+int64(e1%8), int64(s1%8))
		ndims++
	}
	if e1 > 0 && e2 > 0 {
		b.Dim(int64(o2%8), 1+int64(e2%6), int64(s2%8))
		ndims++
	}
	if ndims >= 2 && modCount > 0 {
		targets := []descriptor.Target{descriptor.TargetOffset, descriptor.TargetSize, descriptor.TargetStride}
		behavs := []descriptor.Behavior{descriptor.Add, descriptor.Sub}
		b.Mod(targets[modTarget%3], behavs[modBehav%2], 1+int64(modDisp%4), int64(modCount%8))
	}
	d, err := b.Build()
	return d, err == nil
}

// seedCorpus mirrors the property-test shapes in descriptor_test.go: affine
// 2-D/3-D patterns with offsets, a triangular static-modifier pattern, a
// column walk and a negative-stride sweep.
func seedCorpus(f *testing.F) {
	f.Add(int8(0), int8(1), uint8(8), int8(0), int8(1), uint8(0), int8(0), int8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0))     // linear
	f.Add(int8(0), int8(1), uint8(8), int8(0), int8(4), uint8(8), int8(0), int8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0))     // rows (TestQuickAffine2D)
	f.Add(int8(2), int8(1), uint8(6), int8(1), int8(4), uint8(5), int8(3), int8(2), uint8(4), uint8(0), uint8(0), uint8(0), uint8(0))     // offsets (TestQuickAffine3DWithOffsets)
	f.Add(int8(0), int8(1), uint8(0), int8(0), int8(4), uint8(8), int8(0), int8(0), uint8(0), uint8(1), uint8(0), uint8(1), uint8(7))     // triangular (TestQuickTriangular)
	f.Add(int8(0), int8(2), uint8(1), int8(0), int8(4), uint8(8), int8(0), int8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0))     // column
	f.Add(int8(0), int8(-1), uint8(8), int8(0), int8(-4), uint8(4), int8(0), int8(0), uint8(0), uint8(2), uint8(1), uint8(2), uint8(3))   // negative strides + stride mod
	f.Add(int8(-4), int8(3), uint8(11), int8(-2), int8(-5), uint8(7), int8(1), int8(6), uint8(5), uint8(1), uint8(1), uint8(3), uint8(5)) // mixed signs 3-D + size mod
}

// FuzzIterator checks iterator invariants on arbitrary bounded descriptors:
// the walk terminates, emits exactly the nested-loop element count for
// modifier-free patterns, flags dimension ends consistently, and marks Last
// exactly once.
func FuzzIterator(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, o0, s0 int8, e0 uint8, o1, s1 int8, e1 uint8, o2, s2 int8, e2 uint8,
		modTarget, modBehav, modDisp, modCount uint8) {
		d, ok := fuzzDescriptor(o0, s0, e0, o1, s1, e1, o2, s2, e2, modTarget, modBehav, modDisp, modCount)
		if !ok {
			t.Skip()
		}
		const cap = 1 << 16
		it := descriptor.NewIterator(d, nil)
		n, lasts := 0, 0
		for n < cap {
			e, more := it.Next()
			if !more {
				break
			}
			n++
			if e.Last {
				lasts++
				if !e.EndsDim(0) || !e.EndsDim(len(d.Dims)-1) {
					t.Fatalf("Last element must end every dimension: %+v", e)
				}
			}
			for k := 1; k < len(d.Dims); k++ {
				if e.EndsDim(k) && !e.EndsDim(k-1) {
					t.Fatalf("end of dim %d without end of dim %d: %+v", k, k-1, e)
				}
			}
		}
		if n == cap {
			t.Fatalf("iterator did not terminate within %d elements: %v", cap, d)
		}
		if n > 0 && lasts != 1 {
			t.Fatalf("Last set %d times over %d elements: %v", lasts, n, d)
		}
		if len(d.Static) == 0 {
			want := int64(1)
			for _, dim := range d.Dims {
				want *= dim.Size
			}
			if int64(n) != want {
				t.Fatalf("emitted %d elements, nested-loop count is %d: %v", n, want, d)
			}
		}
	})
}

// FuzzFootprint checks the symbolic footprint against full enumeration: an
// exact footprint must reproduce the oracle sequence (addresses, positions,
// hull, count), and FirstPos must agree with a linear scan.
func FuzzFootprint(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, o0, s0 int8, e0 uint8, o1, s1 int8, e1 uint8, o2, s2 int8, e2 uint8,
		modTarget, modBehav, modDisp, modCount uint8) {
		d, ok := fuzzDescriptor(o0, s0, e0, o1, s1, e1, o2, s2, e2, modTarget, modBehav, modDisp, modCount)
		if !ok {
			t.Skip()
		}
		fp := descriptor.NewFootprint(d, 1<<16)
		if fp.Top {
			return // budget exhaustion is legal, just imprecise
		}
		oracle := descriptor.Addresses(d, nil)
		if fp.Elems != int64(len(oracle)) {
			t.Fatalf("Elems = %d, oracle has %d: %v", fp.Elems, len(oracle), d)
		}
		if !fp.Exact() {
			return // hull-only: nothing further to cross-check cheaply
		}
		i := 0
		fp.EachElem(func(pos, addr int64) bool {
			if pos != int64(i) || uint64(addr) != oracle[i] {
				t.Fatalf("element %d: pos %d addr %#x, oracle %#x: %v", i, pos, addr, oracle[i], d)
			}
			i++
			return true
		})
		if i != len(oracle) {
			t.Fatalf("walked %d of %d elements", i, len(oracle))
		}
		// FirstPos agreement on each distinct address.
		probed := map[uint64]bool{}
		for first, a := range oracle {
			if probed[a] {
				continue
			}
			probed[a] = true
			pos, ok := fp.FirstPos(int64(a)-1, int64(a)+1)
			if !ok || pos != int64(first) {
				t.Fatalf("FirstPos(%#x) = %d,%v, oracle first %d: %v", a, pos, ok, first, d)
			}
		}
	})
}
