package descriptor

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

// addrsOf runs the pure-Go nested loops in ref and collects byte addresses,
// serving as the oracle the descriptor sequence must match.
func addrsOf(ref func(emit func(elemIdx int64))) []uint64 {
	var out []uint64
	ref(func(e int64) { out = append(out, uint64(e)) })
	return out
}

// scale converts element indices from an oracle into byte addresses.
func scale(base uint64, w arch.ElemWidth, idx []uint64) []uint64 {
	out := make([]uint64, len(idx))
	for i, e := range idx {
		out[i] = base + e*uint64(w)
	}
	return out
}

func TestLinearPatternB1(t *testing.T) {
	// Fig 3.B1: for (i=0; i<N; i++) A[i]
	const base, n = 0x1000, 17
	d := New(base, arch.W4, Load).Linear(n, 1).MustBuild()
	got := Addresses(d, nil)
	want := scale(base, arch.W4, addrsOf(func(emit func(int64)) {
		for i := int64(0); i < n; i++ {
			emit(i)
		}
	}))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("linear: got %v want %v", got, want)
	}
}

func TestRectangularPatternB2(t *testing.T) {
	// Fig 3.B2: for (i..Nr) for (j..Nc) A[i*Nc+j]
	const base, nr, nc = 0x2000, 5, 7
	d := New(base, arch.W8, Load).
		Dim(0, nc, 1).
		Dim(0, nr, nc).
		MustBuild()
	got := Addresses(d, nil)
	want := scale(base, arch.W8, addrsOf(func(emit func(int64)) {
		for i := int64(0); i < nr; i++ {
			for j := int64(0); j < nc; j++ {
				emit(i*nc + j)
			}
		}
	}))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rectangular: got %v want %v", got, want)
	}
}

func TestRectangularScatteredPatternB3(t *testing.T) {
	// Fig 3.B3: for (i=0; i<Nr; i+=2) for (j=0; j<d; j+=2) A[i*Nc+j]
	// Descriptor: D0{&A, d/2, 2}, D1{0, Nr/2, 2*Nc}
	const base, nr, nc, dd = 0x3000, 8, 10, 6
	d := New(base, arch.W4, Load).
		Dim(0, dd/2, 2).
		Dim(0, nr/2, 2*nc).
		MustBuild()
	got := Addresses(d, nil)
	want := scale(base, arch.W4, addrsOf(func(emit func(int64)) {
		for i := int64(0); i < nr; i += 2 {
			for j := int64(0); j < dd; j += 2 {
				emit(i*nc + j)
			}
		}
	}))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scattered: got %v want %v", got, want)
	}
}

func TestLowerTriangularPatternB4(t *testing.T) {
	// Fig 3.B4: for (K=i=0; i<Nr; i++) { K++; for (j=0; j<K; j++) A[i*Nc+j] }
	// Descriptor: D0{&A, 0, 1}, D1{0, Nr, Nc}, static modifier {Size, Add, 1, Nr}.
	const base, nr, nc = 0x4000, 6, 9
	d := New(base, arch.W4, Load).
		Dim(0, 0, 1).
		Dim(0, nr, nc).
		Mod(TargetSize, Add, 1, nr).
		MustBuild()
	got := Addresses(d, nil)
	want := scale(base, arch.W4, addrsOf(func(emit func(int64)) {
		k := int64(0)
		for i := int64(0); i < nr; i++ {
			k++
			for j := int64(0); j < k; j++ {
				emit(i*nc + j)
			}
		}
	}))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("triangular: got %v want %v", got, want)
	}
}

func TestUpperTriangularWithSub(t *testing.T) {
	// Complement of B4: row i has Nr-i elements, realized with a Sub modifier
	// and a compensating offset modifier.
	const base, nr, nc = 0x9000, 6, 6
	d := New(base, arch.W4, Load).
		Dim(0, nr+1, 1).
		Dim(0, nr, nc).
		Mod(TargetSize, Sub, 1, nr).
		Mod(TargetOffset, Add, 1, nr).
		MustBuild()
	// First outer iteration fires both mods: size Nr+1-1=Nr, offset 1.
	got := Addresses(d, nil)
	want := scale(base, arch.W4, addrsOf(func(emit func(int64)) {
		for i := int64(0); i < nr; i++ {
			for j := i + 1; j < nr+1; j++ {
				emit(i*nc + j)
			}
		}
	}))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("upper triangular: got %v want %v", got, want)
	}
}

func TestIndirectionPatternB5(t *testing.T) {
	// Fig 3.B5: for (i=0; i<Nc; i++) B[A[i]]
	// Stream B: D0{&B, 1, 0} with a virtual indirect level {Offset, SetAdd, A}.
	const base = 0x5000
	idx := []uint64{4, 0, 9, 2, 2, 7}
	d := New(base, arch.W8, Load).
		Dim(0, 1, 0).
		IndirectOuter(TargetOffset, SetAdd, 3).
		MustBuild()
	src := NewSliceOrigin(map[int][]uint64{3: idx})
	got := Addresses(d, src)
	want := make([]uint64, len(idx))
	for i, v := range idx {
		want[i] = base + v*8
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("indirection: got %v want %v", got, want)
	}
}

func TestIndirectSetValue(t *testing.T) {
	// SetValue retargets the offset absolutely each iteration.
	vals := []uint64{10, 3, 3, 0}
	d := New(0, arch.W1, Load).
		Dim(0, 2, 1). // two consecutive bytes per indirection
		IndirectOuter(TargetOffset, SetValue, 1).
		MustBuild()
	src := NewSliceOrigin(map[int][]uint64{1: vals})
	got := Addresses(d, src)
	want := []uint64{10, 11, 3, 4, 3, 4, 0, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("set-value: got %v want %v", got, want)
	}
}

func TestIndirectSetSub(t *testing.T) {
	d := New(1000, arch.W1, Load).
		Dim(100, 1, 0).
		IndirectOuter(TargetOffset, SetSub, 0).
		MustBuild()
	src := NewSliceOrigin(map[int][]uint64{0: {10, 20}})
	got := Addresses(d, src)
	want := []uint64{1000 + 90, 1000 + 80}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("set-sub: got %v want %v", got, want)
	}
}

func TestIndirectBoundToRealDim(t *testing.T) {
	// Row-indexed gather: for each of the outer dim's iterations an index is
	// consumed and selects the row: A[idx[i]*Nc + j] (paper Fig 2.C shape).
	const base, nc, rows = 0x6000, 4, 3
	idx := []uint64{2, 0, 5}
	d := New(base, arch.W4, Load).
		Dim(0, nc, 1).
		Dim(0, rows, nc).
		Indirect(TargetOffset, SetValue, 7).
		MustBuild()
	src := NewSliceOrigin(map[int][]uint64{7: idx})
	got := Addresses(d, src)
	want := scale(base, arch.W4, addrsOf(func(emit func(int64)) {
		for i := 0; i < rows; i++ {
			for j := int64(0); j < nc; j++ {
				emit(int64(idx[i])*nc + j)
			}
		}
	}))
	// The indirect modifier rewrites D0's offset; D1 still adds ik*Sk with
	// its own offset 0, so each outer iteration contributes i*nc as well.
	// Compensate by using stride 0 on the outer dim instead.
	d2 := New(base, arch.W4, Load).
		Dim(0, nc, 1).
		Dim(0, rows, 0).
		Indirect(TargetOffset, SetValue, 7).
		MustBuild()
	src2 := NewSliceOrigin(map[int][]uint64{7: scaleIdx(idx, nc)})
	got2 := Addresses(d2, src2)
	if !reflect.DeepEqual(got2, want) {
		t.Fatalf("indirect rows: got %v want %v", got2, want)
	}
	_ = got
}

func scaleIdx(idx []uint64, m uint64) []uint64 {
	out := make([]uint64, len(idx))
	for i, v := range idx {
		out[i] = v * m
	}
	return out
}

func TestEndFlags(t *testing.T) {
	// 2x3 matrix: end-of-dim0 after every 3rd element, end-of-stream at last.
	d := New(0, arch.W4, Load).Dim(0, 3, 1).Dim(0, 2, 3).MustBuild()
	elems := Sequence(d, nil)
	if len(elems) != 6 {
		t.Fatalf("got %d elements, want 6", len(elems))
	}
	for i, e := range elems {
		wantDim0 := i == 2 || i == 5
		if e.EndsDim(0) != wantDim0 {
			t.Errorf("elem %d: EndsDim(0)=%v want %v", i, e.EndsDim(0), wantDim0)
		}
		wantLast := i == 5
		if e.Last != wantLast {
			t.Errorf("elem %d: Last=%v want %v", i, e.Last, wantLast)
		}
		if e.EndsDim(1) != wantLast {
			t.Errorf("elem %d: EndsDim(1)=%v want %v", i, e.EndsDim(1), wantLast)
		}
	}
}

func TestEndFlagsTriangular(t *testing.T) {
	// Row sizes 1,2,3: flags must reflect the dynamic row ends.
	d := New(0, arch.W4, Load).
		Dim(0, 0, 1).
		Dim(0, 3, 10).
		Mod(TargetSize, Add, 1, 3).
		MustBuild()
	elems := Sequence(d, nil)
	if len(elems) != 6 {
		t.Fatalf("got %d elements, want 6", len(elems))
	}
	rowEnds := map[int]bool{0: true, 2: true, 5: true}
	for i, e := range elems {
		if e.EndsDim(0) != rowEnds[i] {
			t.Errorf("elem %d: EndsDim(0)=%v want %v", i, e.EndsDim(0), rowEnds[i])
		}
	}
	if !elems[5].Last {
		t.Errorf("final element not marked Last")
	}
}

func TestZeroSizeStream(t *testing.T) {
	d := New(0, arch.W4, Load).Linear(0, 1).MustBuild()
	if got := Addresses(d, nil); len(got) != 0 {
		t.Fatalf("zero-size stream produced %d elements", len(got))
	}
	it := NewIterator(d, nil)
	if _, ok := it.Next(); ok {
		t.Fatal("Next on empty stream returned ok")
	}
	if !it.Done() {
		t.Fatal("empty stream iterator not Done")
	}
}

func TestEmptyInnerRuns(t *testing.T) {
	// Middle dimension of size 0 on some iterations: triangular starting at
	// 0 rows where the modifier only fires from iteration 2 onward is not
	// expressible, but a pattern with an initially-negative size that climbs
	// through zero exercises empty-run skipping.
	d := New(0, arch.W4, Load).
		Dim(0, -1, 1). // sizes seen: 0, 1, 2 after the modifier fires
		Dim(0, 3, 100).
		Mod(TargetSize, Add, 1, 3).
		MustBuild()
	got := Addresses(d, nil)
	want := []uint64{400, 800, 804} // row 0 empty, row 1 one elem, row 2 two
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("empty inner runs: got %v want %v", got, want)
	}
}

func TestModifierCountCap(t *testing.T) {
	// The modifier stops after Count applications; later iterations reuse
	// the final parameter values.
	d := New(0, arch.W4, Load).
		Dim(0, 1, 1).
		Dim(0, 4, 10).
		Mod(TargetSize, Add, 1, 2).
		MustBuild()
	got := Addresses(d, nil)
	// Row sizes: 2 (after 1st fire), 3 (after 2nd), then capped at 3, 3.
	want := scale(0, arch.W4, addrsOf(func(emit func(int64)) {
		sizes := []int64{2, 3, 3, 3}
		for i := int64(0); i < 4; i++ {
			for j := int64(0); j < sizes[i]; j++ {
				emit(i*10 + j)
			}
		}
	}))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("count cap: got %v want %v", got, want)
	}
}

func TestOffsetModifierScansWindow(t *testing.T) {
	// Sliding window via offset modifier on dim 0.
	d := New(0, arch.W4, Load).
		Dim(0, 3, 1).
		Dim(0, 4, 0).
		Mod(TargetOffset, Add, 2, 0).
		MustBuild()
	got := Addresses(d, nil)
	want := scale(0, arch.W4, addrsOf(func(emit func(int64)) {
		for i := int64(0); i < 4; i++ {
			for j := int64(0); j < 3; j++ {
				emit((i+1)*2 + j)
			}
		}
	}))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("window: got %v want %v", got, want)
	}
}

func TestThreeDimensional(t *testing.T) {
	const base, n0, n1, n2 = 0x8000, 3, 4, 2
	d := New(base, arch.W8, Load).
		Dim(0, n0, 1).
		Dim(0, n1, n0).
		Dim(0, n2, n0*n1).
		MustBuild()
	got := Addresses(d, nil)
	want := scale(base, arch.W8, addrsOf(func(emit func(int64)) {
		for k := int64(0); k < n2; k++ {
			for i := int64(0); i < n1; i++ {
				for j := int64(0); j < n0; j++ {
					emit(k*n0*n1 + i*n0 + j)
				}
			}
		}
	}))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("3-D: got %v want %v", got, want)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		d    Descriptor
		ok   bool
	}{
		{"no dims", Descriptor{Width: arch.W4}, false},
		{"bad width", Descriptor{Width: 3, Dims: []Dim{{Size: 1, Stride: 1}}}, false},
		{"ok 1d", Descriptor{Width: arch.W4, Dims: []Dim{{Size: 1, Stride: 1}}}, true},
		{"too many dims", Descriptor{Width: arch.W4, Dims: make([]Dim, MaxDims+1)}, false},
		{"too many mods", Descriptor{Width: arch.W4,
			Dims:   []Dim{{Size: 1}, {Size: 1}},
			Static: make([]StaticMod, MaxMods+1)}, false},
		{"mod bound 0", Descriptor{Width: arch.W4,
			Dims:   []Dim{{Size: 1}, {Size: 1}},
			Static: []StaticMod{{Bound: 0, Behav: Add}}}, false},
		{"mod bad behavior", Descriptor{Width: arch.W4,
			Dims:   []Dim{{Size: 1}, {Size: 1}},
			Static: []StaticMod{{Bound: 1, Behav: SetAdd}}}, false},
		{"indirect bad behavior", Descriptor{Width: arch.W4,
			Dims:     []Dim{{Size: 1}, {Size: 1}},
			Indirect: []IndirectMod{{Bound: 1, Behav: Add}}}, false},
		{"indirect virtual ok", Descriptor{Width: arch.W4,
			Dims:     []Dim{{Size: 1}},
			Indirect: []IndirectMod{{Bound: 1, Behav: SetAdd}}}, true},
	}
	for _, c := range cases {
		err := c.d.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestBuilderRejectsModOnFirstDim(t *testing.T) {
	if _, err := New(0, arch.W4, Load).Linear(4, 1).Mod(TargetSize, Add, 1, 4).Build(); err == nil {
		t.Fatal("builder accepted a static modifier on the innermost dimension")
	}
}

func TestPerElementGather(t *testing.T) {
	// A[B[i][j]] (paper Fig 2.C): indirect modifier bound to dimension 0
	// fires per element and retargets the element offset; the outer dims
	// mirror the index matrix's shape so row-end flags line up.
	const base, nr, nc = 0x9100, 3, 4
	idx := []uint64{5, 1, 0, 7, 2, 2, 9, 4, 8, 6, 3, 0}
	d := New(base, arch.W4, Load).
		Dim(0, nc, 0).
		Indirect(TargetOffset, SetValue, 11).
		Dim(0, nr, 0).
		MustBuild()
	src := NewSliceOrigin(map[int][]uint64{11: idx})
	elems := Sequence(d, src)
	if len(elems) != nr*nc {
		t.Fatalf("gather produced %d elements, want %d", len(elems), nr*nc)
	}
	for i, e := range elems {
		if want := base + idx[i]*4; e.Addr != want {
			t.Errorf("elem %d: addr %#x want %#x", i, e.Addr, want)
		}
		wantRowEnd := i%nc == nc-1
		if e.EndsDim(0) != wantRowEnd {
			t.Errorf("elem %d: EndsDim(0)=%v want %v", i, e.EndsDim(0), wantRowEnd)
		}
	}
	if !elems[len(elems)-1].Last {
		t.Error("final gather element not marked Last")
	}
}

func TestStateBytesRange(t *testing.T) {
	// Paper §IV-A: 32 B for 1-D patterns up to 400 B for 8-D + 7 modifiers.
	d1 := New(0, arch.W4, Load).Linear(4, 1).MustBuild()
	if got := d1.StateBytes(); got != 32 {
		t.Errorf("1-D state = %d B, want 32", got)
	}
	b := New(0, arch.W4, Load)
	for i := 0; i < MaxDims; i++ {
		b.Dim(0, 2, 1)
	}
	for i := 0; i < MaxMods; i++ {
		b.Mod(TargetOffset, Add, 1, 0)
	}
	d8 := b.MustBuild()
	if got := d8.StateBytes(); got < 300 || got > 400 {
		t.Errorf("8-D+7-mod state = %d B, want within (300, 400]", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	d := New(0, arch.W4, Load).Dim(0, 4, 1).Dim(0, 4, 4).Mod(TargetSize, Add, 1, 4).MustBuild()
	it := NewIterator(d, nil)
	for i := 0; i < 3; i++ {
		it.Next()
	}
	c := it.Clone()
	var a, b []uint64
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		a = append(a, e.Addr)
	}
	for {
		e, ok := c.Next()
		if !ok {
			break
		}
		b = append(b, e.Addr)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("clone diverged: %v vs %v", a, b)
	}
	if it.Emitted() != c.Emitted() {
		t.Fatalf("emitted counts diverged: %d vs %d", it.Emitted(), c.Emitted())
	}
}

// TestQuickAffine2D is a property test: random rectangular 2-D descriptors
// must match the nested-loop oracle exactly.
func TestQuickAffine2D(t *testing.T) {
	f := func(nrs, ncs, s0s, s1s uint8) bool {
		nr, nc := int64(nrs%16), int64(ncs%16)
		s0, s1 := int64(s0s%8), int64(s1s%64)
		d := New(0x10000, arch.W4, Load).Dim(0, nc, s0).Dim(0, nr, s1).MustBuild()
		got := Addresses(d, nil)
		want := scale(0x10000, arch.W4, addrsOf(func(emit func(int64)) {
			for i := int64(0); i < nr; i++ {
				for j := int64(0); j < nc; j++ {
					emit(i*s1 + j*s0)
				}
			}
		}))
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAffine3DWithOffsets checks the full affine form with per-dim
// offsets against equation (1) of the paper.
func TestQuickAffine3DWithOffsets(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := make([]Dim, 1+rng.Intn(3))
		for i := range dims {
			dims[i] = Dim{
				Offset: int64(rng.Intn(5)),
				Size:   int64(1 + rng.Intn(5)),
				Stride: int64(rng.Intn(9) - 4),
			}
		}
		dims[0].Offset = int64(rng.Intn(4)) // keep addresses manageable
		d := &Descriptor{Base: 1 << 20, Width: arch.W8, Dims: dims}
		if err := d.Validate(); err != nil {
			return true
		}
		got := Addresses(d, nil)
		var want []uint64
		idx := make([]int64, len(dims))
		var walk func(k int)
		walk = func(k int) {
			if k < 0 {
				e := dims[0].Offset + idx[0]*dims[0].Stride
				for j := 1; j < len(dims); j++ {
					e += (dims[j].Offset + idx[j]) * dims[j].Stride
				}
				want = append(want, uint64(int64(d.Base)+e*8))
				return
			}
			for idx[k] = 0; idx[k] < dims[k].Size; idx[k]++ {
				walk(k - 1)
			}
		}
		walk(len(dims) - 1)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTriangular checks static size modifiers with random geometry.
func TestQuickTriangular(t *testing.T) {
	f := func(rowsS, strideS, dispS uint8) bool {
		rows := int64(1 + rowsS%12)
		stride := int64(1 + strideS%20)
		disp := int64(1 + dispS%3)
		d := New(0, arch.W4, Load).
			Dim(0, 0, 1).
			Dim(0, rows, stride).
			Mod(TargetSize, Add, disp, rows).
			MustBuild()
		got := Addresses(d, nil)
		want := scale(0, arch.W4, addrsOf(func(emit func(int64)) {
			size := int64(0)
			for i := int64(0); i < rows; i++ {
				size += disp
				for j := int64(0); j < size; j++ {
					emit(i*stride + j)
				}
			}
		}))
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIndirect checks indirect gathers with random index vectors.
func TestQuickIndirect(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		idx := make([]uint64, len(raw))
		for i, v := range raw {
			idx[i] = uint64(v)
		}
		d := New(0x7000, arch.W4, Load).
			Dim(0, 1, 0).
			IndirectOuter(TargetOffset, SetAdd, 9).
			MustBuild()
		got := Addresses(d, NewSliceOrigin(map[int][]uint64{9: idx}))
		if len(got) != len(idx) {
			return false
		}
		for i := range idx {
			if got[i] != 0x7000+idx[i]*4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFlagsPartitionStream verifies that in any multi-dim descriptor the
// number of end-of-dim0 flags equals the number of dim-0 runs and exactly one
// element is Last.
func TestQuickFlagsPartitionStream(t *testing.T) {
	f := func(n0s, n1s, n2s uint8) bool {
		n0, n1, n2 := int64(1+n0s%7), int64(1+n1s%5), int64(1+n2s%4)
		d := New(0, arch.W4, Load).
			Dim(0, n0, 1).Dim(0, n1, n0).Dim(0, n2, n0*n1).MustBuild()
		elems := Sequence(d, nil)
		if int64(len(elems)) != n0*n1*n2 {
			return false
		}
		var rowEnds, lasts int64
		for _, e := range elems {
			if e.EndsDim(0) {
				rowEnds++
			}
			if e.Last {
				lasts++
			}
		}
		return rowEnds == n1*n2 && lasts == 1 && elems[len(elems)-1].Last
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDescriptorString(t *testing.T) {
	d := New(0x1000, arch.W4, Store).
		Dim(0, 8, 1).
		Dim(0, 4, 8).
		Mod(TargetSize, Add, 1, 4).
		MustBuild()
	s := d.String()
	for _, want := range []string{"store", "D0{0,8,1}", "D1{0,4,8}", "M@1{size,add,1,4}"} {
		if !contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
