package descriptor_test

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/descriptor"
)

// checkExact verifies that an exact footprint reproduces the oracle sequence
// element-for-element, with consistent positions, hull and count.
func checkExact(t *testing.T, d *descriptor.Descriptor, f *descriptor.Footprint) {
	t.Helper()
	oracle := descriptor.Addresses(d, nil)
	if !f.Exact() {
		t.Fatalf("footprint not exact: %v", f)
	}
	if f.Elems != int64(len(oracle)) {
		t.Fatalf("Elems = %d, want %d", f.Elems, len(oracle))
	}
	i := 0
	complete := f.EachElem(func(pos, addr int64) bool {
		if pos != int64(i) {
			t.Fatalf("element %d has position %d", i, pos)
		}
		if uint64(addr) != oracle[i] {
			t.Fatalf("element %d = %#x, want %#x", i, addr, oracle[i])
		}
		i++
		return true
	})
	if !complete || i != len(oracle) {
		t.Fatalf("walked %d elements (complete=%v), want %d", i, complete, len(oracle))
	}
	var min, max uint64
	for i, a := range oracle {
		if i == 0 || a < min {
			min = a
		}
		if i == 0 || a > max {
			max = a
		}
	}
	if len(oracle) > 0 && (uint64(f.Min) != min || uint64(f.Max) != max) {
		t.Fatalf("hull [%#x, %#x], want [%#x, %#x]", f.Min, f.Max, min, max)
	}
}

func TestFootprintAffineShapes(t *testing.T) {
	const base = 0x10000
	cases := []struct {
		name  string
		d     *descriptor.Descriptor
		spans int // expected decomposition size after coalescing; 0 = skip
	}{
		{"linear", descriptor.New(base, arch.W4, descriptor.Load).Linear(64, 1).MustBuild(), 1},
		{"strided", descriptor.New(base, arch.W8, descriptor.Load).Linear(16, 3).MustBuild(), 1},
		{"rows contiguous", descriptor.New(base, arch.W4, descriptor.Load).
			Dim(0, 8, 1).Dim(0, 8, 8).MustBuild(), 1},
		{"rows padded", descriptor.New(base, arch.W4, descriptor.Load).
			Dim(0, 8, 1).Dim(0, 8, 10).MustBuild(), 8},
		{"column", descriptor.New(base, arch.W4, descriptor.Load).
			Dim(0, 1, 1).Dim(0, 16, 8).MustBuild(), 1},
		{"repeated row", descriptor.New(base, arch.W4, descriptor.Load).
			Dim(0, 8, 1).Dim(0, 4, 0).MustBuild(), 4},
		{"negative stride", descriptor.New(base+4*63, arch.W4, descriptor.Load).
			Linear(64, -1).MustBuild(), 1},
		{"offset dims", descriptor.New(base, arch.W4, descriptor.Load).
			Dim(2, 6, 1).Dim(1, 5, 8).MustBuild(), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := descriptor.NewFootprint(tc.d, 0)
			checkExact(t, tc.d, f)
			if tc.spans > 0 && len(f.Spans) != tc.spans {
				t.Errorf("got %d spans, want %d: %v", len(f.Spans), tc.spans, f)
			}
		})
	}
}

func TestFootprintStaticModExact(t *testing.T) {
	// Fig 3.B4 triangular pattern: row r has r+1 elements.
	const nr = 12
	d := descriptor.New(0x20000, arch.W4, descriptor.Load).
		Dim(0, 0, 1).Dim(0, nr, 16).
		Mod(descriptor.TargetSize, descriptor.Add, 1, nr).
		MustBuild()
	f := descriptor.NewFootprint(d, 0)
	checkExact(t, d, f)
}

func TestFootprintIndirectIsTop(t *testing.T) {
	d := descriptor.New(0x20000, arch.W4, descriptor.Load).
		Dim(0, 8, 1).
		IndirectOuter(descriptor.TargetOffset, descriptor.SetValue, 3).
		MustBuild()
	f := descriptor.NewFootprint(d, 0)
	if !f.Top {
		t.Fatalf("indirect descriptor must be ⊤, got %v", f)
	}
	if descriptor.Relate(f, f, 0) != descriptor.OverlapUnknown {
		t.Fatal("⊤ vs ⊤ must be unknown")
	}
	if f.RelateRange(0, 1<<40) != descriptor.OverlapUnknown {
		t.Fatal("⊤ vs range must be unknown")
	}
}

func TestFootprintBudgetDegradesToTop(t *testing.T) {
	d := descriptor.New(0x20000, arch.W4, descriptor.Load).
		Dim(0, 0, 1).Dim(0, 64, 64).
		Mod(descriptor.TargetSize, descriptor.Add, 1, 0).
		MustBuild()
	f := descriptor.NewFootprint(d, 100) // 64·65/2 = 2080 elements > 100
	if !f.Top {
		t.Fatalf("over-budget static-mod footprint must be ⊤, got %v", f)
	}
}

func TestFootprintEmpty(t *testing.T) {
	d := &descriptor.Descriptor{Base: 0x1000, Width: arch.W4, Kind: descriptor.Load,
		Dims: []descriptor.Dim{{Offset: 0, Size: 0, Stride: 1}}}
	f := descriptor.NewFootprint(d, 0)
	if !f.Empty() {
		t.Fatalf("zero-size dim must give an empty footprint, got %v", f)
	}
	g := descriptor.NewFootprint(descriptor.New(0x1000, arch.W4, descriptor.Load).Linear(8, 1).MustBuild(), 0)
	if descriptor.Relate(f, g, 0) != descriptor.OverlapDisjoint {
		t.Fatal("empty footprint must be disjoint from everything")
	}
}

func TestRelateDisjointAndOverlap(t *testing.T) {
	mk := func(base uint64, n, stride int64) *descriptor.Footprint {
		d := descriptor.New(base, arch.W4, descriptor.Load).Linear(n, stride).MustBuild()
		return descriptor.NewFootprint(d, 0)
	}
	a := mk(0x1000, 64, 1)
	b := mk(0x1100, 64, 1) // starts exactly at a's end
	if got := descriptor.Relate(a, b, 0); got != descriptor.OverlapDisjoint {
		t.Fatalf("adjacent ranges: %v, want disjoint", got)
	}
	c := mk(0x10fc, 64, 1) // one element shared with a
	if got := descriptor.Relate(a, c, 0); got != descriptor.OverlapYes {
		t.Fatalf("one-element overlap: %v, want overlapping", got)
	}
	// Interleaved but byte-disjoint: evens vs odds of a 4-byte grid.
	ev := mk(0x2000, 32, 2)
	od := mk(0x2004, 32, 2)
	if got := descriptor.Relate(ev, od, 0); got != descriptor.OverlapDisjoint {
		t.Fatalf("even/odd interleave: %v, want disjoint", got)
	}
	// Different widths: an 8-byte element straddling two 4-byte elements.
	w8 := descriptor.NewFootprint(
		descriptor.New(0x2002, arch.W8, descriptor.Load).Linear(1, 1).MustBuild(), 0)
	if got := descriptor.Relate(ev, w8, 0); got != descriptor.OverlapYes {
		t.Fatalf("straddling widths: %v, want overlapping", got)
	}
}

func TestFirstPosSequenceOrder(t *testing.T) {
	// Two rows walked backwards: position order disagrees with address order.
	d := descriptor.New(0x1000+4*7, arch.W4, descriptor.Load).
		Dim(0, 8, -1).Dim(0, 2, 16).MustBuild()
	f := descriptor.NewFootprint(d, 0)
	checkExact(t, d, f)
	oracle := descriptor.Addresses(d, nil)
	for i, a := range oracle {
		first := -1
		for j, b := range oracle {
			if b == a {
				first = j
				break
			}
		}
		pos, ok := f.FirstPos(int64(a)-1, int64(a)+1)
		if !ok || pos != int64(first) {
			t.Fatalf("FirstPos(%#x) = %d,%v; want %d (element %d)", a, pos, ok, first, i)
		}
	}
	if _, ok := f.FirstPos(0x0fff, 0x1000); ok {
		t.Fatal("FirstPos below the footprint must miss")
	}
}

func TestSameSequence(t *testing.T) {
	mk := func(kind descriptor.Kind) *descriptor.Footprint {
		d := descriptor.New(0x3000, arch.W4, kind).Dim(0, 8, 1).Dim(0, 8, 8).MustBuild()
		return descriptor.NewFootprint(d, 0)
	}
	if !mk(descriptor.Load).SameSequence(mk(descriptor.Store)) {
		t.Fatal("identical patterns must be SameSequence")
	}
	rev := descriptor.NewFootprint(
		descriptor.New(0x3000+4*63, arch.W4, descriptor.Load).Linear(64, -1).MustBuild(), 0)
	if mk(descriptor.Load).SameSequence(rev) {
		t.Fatal("reversed order must not be SameSequence")
	}
}

// TestQuickFootprintMatchesOracle cross-checks random affine descriptors
// (with and without static modifiers) against full enumeration.
func TestQuickFootprintMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		b := descriptor.New(1<<20, arch.W4, descriptor.Load)
		ndims := 1 + rng.Intn(3)
		for k := 0; k < ndims; k++ {
			b.Dim(int64(rng.Intn(5)), 1+int64(rng.Intn(9)), int64(rng.Intn(9)-4))
		}
		if ndims >= 2 && rng.Intn(2) == 0 {
			targets := []descriptor.Target{descriptor.TargetOffset, descriptor.TargetSize, descriptor.TargetStride}
			behavs := []descriptor.Behavior{descriptor.Add, descriptor.Sub}
			b.Mod(targets[rng.Intn(3)], behavs[rng.Intn(2)], 1+int64(rng.Intn(3)), int64(rng.Intn(6)))
		}
		d, err := b.Build()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		f := descriptor.NewFootprint(d, 0)
		if f.Top {
			t.Fatalf("trial %d: unexpected ⊤ for %v", trial, d)
		}
		checkExact(t, d, f)
	}
}

// TestQuickRelateSound cross-checks Relate's disjoint/overlap verdicts
// against byte-exact set intersection for random descriptor pairs.
func TestQuickRelateSound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	widths := []arch.ElemWidth{arch.W4, arch.W8}
	gen := func() *descriptor.Descriptor {
		b := descriptor.New(1<<20+uint64(4*rng.Intn(40)), widths[rng.Intn(2)], descriptor.Load)
		for k, n := 0, 1+rng.Intn(2); k < n; k++ {
			b.Dim(int64(rng.Intn(4)), 1+int64(rng.Intn(8)), int64(rng.Intn(7)-3))
		}
		return b.MustBuild()
	}
	for trial := 0; trial < 500; trial++ {
		da, db := gen(), gen()
		fa, fb := descriptor.NewFootprint(da, 0), descriptor.NewFootprint(db, 0)
		bytesOf := func(d *descriptor.Descriptor) map[uint64]bool {
			m := map[uint64]bool{}
			for _, a := range descriptor.Addresses(d, nil) {
				for i := uint64(0); i < uint64(d.Width); i++ {
					m[a+i] = true
				}
			}
			return m
		}
		ba, bb := bytesOf(da), bytesOf(db)
		truth := false
		for a := range ba {
			if bb[a] {
				truth = true
				break
			}
		}
		got := descriptor.Relate(fa, fb, 0)
		want := descriptor.OverlapDisjoint
		if truth {
			want = descriptor.OverlapYes
		}
		if got != want {
			t.Fatalf("trial %d: Relate = %v, truth %v\n a=%v\n b=%v", trial, got, truth, da, db)
		}
	}
}
