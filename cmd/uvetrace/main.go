// Command uvetrace prints the exact byte-address sequence of a stream
// descriptor — a tool for exploring the paper's §II pattern model without
// running a machine.
//
// The pattern is given as dimension tuples offset:size:stride (innermost
// first) plus optional modifiers:
//
//	uvetrace -base 0x1000 -width 4 -dim 0:8:1 -dim 0:4:8
//	uvetrace -base 0 -width 4 -dim 0:0:1 -dim 0:6:10 -mod size:add:1:6
//	uvetrace -base 0 -width 4 -dim 0:4:0 -indirect offset:set:5,1,9,2
//
// -mod target:behavior:displacement:count attaches a static modifier to the
// most recently declared dimension; -indirect target:behavior:v0,v1,...
// attaches an indirect modifier fed by the given literal origin values.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	uve "repro"
)

type dimFlag []string

func (d *dimFlag) String() string     { return strings.Join(*d, " ") }
func (d *dimFlag) Set(s string) error { *d = append(*d, "d"+s); return nil }

type modFlag struct{ dims *dimFlag }

func (m modFlag) String() string     { return "" }
func (m modFlag) Set(s string) error { *m.dims = append(*m.dims, "m"+s); return nil }

type indFlag struct{ dims *dimFlag }

func (m indFlag) String() string     { return "" }
func (m indFlag) Set(s string) error { *m.dims = append(*m.dims, "i"+s); return nil }

func main() {
	base := flag.String("base", "0", "byte base address (decimal or 0x hex)")
	width := flag.Int("width", 4, "element width in bytes (1,2,4,8)")
	max := flag.Int("max", 256, "print at most this many addresses")
	var parts dimFlag
	flag.Var(&parts, "dim", "dimension offset:size:stride (repeatable, innermost first)")
	flag.Var(modFlag{&parts}, "mod", "static modifier target:behavior:disp:count")
	flag.Var(indFlag{&parts}, "indirect", "indirect modifier target:behavior:v0,v1,...")
	flag.Parse()

	baseAddr, err := strconv.ParseUint(strings.TrimPrefix(*base, "0x"), chooseBase(*base), 64)
	if err != nil {
		fatal("bad -base: %v", err)
	}
	b := uve.NewLoadStream(baseAddr, uve.ElemWidth(*width))
	origins := map[int][]uint64{}
	nextOrigin := 30
	for _, p := range parts {
		kind, spec := p[0], p[1:]
		switch kind {
		case 'd':
			f := splitInts(spec, 3)
			b.Dim(f[0], f[1], f[2])
		case 'm':
			fs := strings.Split(spec, ":")
			if len(fs) != 4 {
				fatal("bad -mod %q", spec)
			}
			d1, _ := strconv.ParseInt(fs[2], 10, 64)
			d2, _ := strconv.ParseInt(fs[3], 10, 64)
			b.Mod(parseTarget(fs[0]), parseBehavior(fs[1], false), d1, d2)
		case 'i':
			fs := strings.Split(spec, ":")
			if len(fs) != 3 {
				fatal("bad -indirect %q", spec)
			}
			var vals []uint64
			for _, v := range strings.Split(fs[2], ",") {
				x, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
				if err != nil {
					fatal("bad indirect value %q", v)
				}
				vals = append(vals, x)
			}
			origins[nextOrigin] = vals
			b.Indirect(parseTarget(fs[0]), parseBehavior(fs[1], true), nextOrigin)
			nextOrigin++
		}
	}
	d, err := b.Build()
	if err != nil {
		fatal("%v", err)
	}
	fmt.Println(d)
	elems := uve.Elements(d, uve.SliceOrigin(origins))
	for i, e := range elems {
		if i >= *max {
			fmt.Printf("... (%d more)\n", len(elems)-i)
			break
		}
		marks := ""
		if e.EndsDim(0) {
			marks += " <dim0"
		}
		if e.Last {
			marks += " <end"
		}
		fmt.Printf("%4d  %#x%s\n", i, e.Addr, marks)
	}
	fmt.Printf("total: %d elements\n", len(elems))
}

func chooseBase(s string) int {
	if strings.HasPrefix(s, "0x") {
		return 16
	}
	return 10
}

func splitInts(s string, n int) []int64 {
	fs := strings.Split(s, ":")
	if len(fs) != n {
		fatal("expected %d colon-separated fields in %q", n, s)
	}
	out := make([]int64, n)
	for i, f := range fs {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			fatal("bad integer %q", f)
		}
		out[i] = v
	}
	return out
}

func parseTarget(s string) uve.Target {
	switch s {
	case "offset":
		return uve.TargetOffset
	case "size":
		return uve.TargetSize
	case "stride":
		return uve.TargetStride
	}
	fatal("bad target %q (offset|size|stride)", s)
	return 0
}

func parseBehavior(s string, indirect bool) uve.Behavior {
	switch s {
	case "add":
		if indirect {
			return uve.ModSetAdd
		}
		return uve.ModAdd
	case "sub":
		if indirect {
			return uve.ModSetSub
		}
		return uve.ModSub
	case "set":
		return uve.ModSetValue
	}
	fatal("bad behavior %q (add|sub|set)", s)
	return 0
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
