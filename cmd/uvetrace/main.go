// Command uvetrace prints the exact byte-address sequence of a stream
// descriptor — a tool for exploring the paper's §II pattern model without
// running a machine.
//
// The pattern is given as dimension tuples offset:size:stride (innermost
// first) plus optional modifiers:
//
//	uvetrace -base 0x1000 -width 4 -dim 0:8:1 -dim 0:4:8
//	uvetrace -base 0 -width 4 -dim 0:0:1 -dim 0:6:10 -mod size:add:1:6
//	uvetrace -base 0 -width 4 -dim 0:4:0 -indirect offset:set:5,1,9,2
//
// Flag order is significant: -mod target:behavior:displacement:count and
// -indirect target:behavior:v0,v1,... attach to the most recently declared
// -dim, exactly as the ss.app.mod configuration instructions follow their
// dimension. Consequently a -mod or -indirect that appears before any -dim
// is an error ("no preceding -dim"), not a silently misattached modifier;
// likewise every numeric field is validated, so `-mod size:add:x:6` fails
// loudly instead of applying displacement 0.
//
// -json emits the same information as a machine-readable document: the
// descriptor string, the total element count, and the first -max addresses
// (with a "truncated" marker when the walk was longer).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	uve "repro"

	"repro/internal/cliflags"
)

type dimFlag []string

func (d *dimFlag) String() string     { return strings.Join(*d, " ") }
func (d *dimFlag) Set(s string) error { *d = append(*d, "d"+s); return nil }

type modFlag struct{ dims *dimFlag }

func (m modFlag) String() string     { return "" }
func (m modFlag) Set(s string) error { *m.dims = append(*m.dims, "m"+s); return nil }

type indFlag struct{ dims *dimFlag }

func (m indFlag) String() string     { return "" }
func (m indFlag) Set(s string) error { *m.dims = append(*m.dims, "i"+s); return nil }

func main() {
	base := flag.String("base", "0", "byte base address (decimal or 0x hex)")
	width := flag.Int("width", 4, "element width in bytes (1,2,4,8)")
	max := flag.Int("max", 256, "print at most this many addresses")
	jsonOut := cliflags.JSON(flag.CommandLine)
	// uvetrace never simulates — the walk is purely functional already —
	// but the flag is shared across the tools, so an invalid spelling is
	// still a usage error here.
	fid := cliflags.AddFidelity(flag.CommandLine)
	var parts dimFlag
	flag.Var(&parts, "dim", "dimension offset:size:stride (repeatable, innermost first)")
	flag.Var(modFlag{&parts}, "mod", "static modifier target:behavior:disp:count (attaches to the preceding -dim)")
	flag.Var(indFlag{&parts}, "indirect", "indirect modifier target:behavior:v0,v1,... (attaches to the preceding -dim)")
	flag.Parse()

	if _, err := fid.Parse(); err != nil {
		fatal("%v", err)
	}
	baseAddr, err := strconv.ParseUint(strings.TrimPrefix(*base, "0x"), chooseBase(*base), 64)
	if err != nil {
		fatal("bad -base: %v", err)
	}
	d, origins, err := buildPattern(baseAddr, *width, parts)
	if err != nil {
		fatal("%v", err)
	}
	elems := uve.Elements(d, uve.SliceOrigin(origins))
	if *jsonOut {
		writeJSON(d, elems, *max)
		return
	}
	fmt.Println(d)
	for i, e := range elems {
		if i >= *max {
			fmt.Printf("... (%d more)\n", len(elems)-i)
			break
		}
		marks := ""
		if e.EndsDim(0) {
			marks += " <dim0"
		}
		if e.Last {
			marks += " <end"
		}
		fmt.Printf("%4d  %#x%s\n", i, e.Addr, marks)
	}
	fmt.Printf("total: %d elements\n", len(elems))
}

// writeJSON emits the machine-readable walk: addresses are capped by -max
// like the text output, with Truncated marking a longer walk.
func writeJSON(d *uve.Descriptor, elems []uve.Elem, max int) {
	doc := struct {
		Descriptor string   `json:"descriptor"`
		Total      int      `json:"total"`
		Addrs      []uint64 `json:"addrs"`
		Truncated  bool     `json:"truncated,omitempty"`
	}{Descriptor: d.String(), Total: len(elems)}
	for i, e := range elems {
		if i >= max {
			doc.Truncated = true
			break
		}
		doc.Addrs = append(doc.Addrs, e.Addr)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal("%v", err)
	}
}

// buildPattern assembles the descriptor from the ordered flag parts (each
// prefixed 'd'im / 'm'od / 'i'ndirect by the flag.Value setters) and the
// literal origin values for indirect modifiers. Modifiers must follow at
// least one dimension — the builder attaches them to the most recent one.
func buildPattern(base uint64, width int, parts []string) (*uve.Descriptor, map[int][]uint64, error) {
	b := uve.NewLoadStream(base, uve.ElemWidth(width))
	origins := map[int][]uint64{}
	nextOrigin := 30
	dims := 0
	for _, p := range parts {
		kind, spec := p[0], p[1:]
		switch kind {
		case 'd':
			f, err := splitInts(spec, 3)
			if err != nil {
				return nil, nil, fmt.Errorf("bad -dim %q: %w", spec, err)
			}
			b.Dim(f[0], f[1], f[2])
			dims++
		case 'm':
			if dims == 0 {
				return nil, nil, fmt.Errorf("-mod %q has no preceding -dim to attach to", spec)
			}
			fs := strings.Split(spec, ":")
			if len(fs) != 4 {
				return nil, nil, fmt.Errorf("bad -mod %q: want target:behavior:disp:count", spec)
			}
			t, err := parseTarget(fs[0])
			if err != nil {
				return nil, nil, fmt.Errorf("bad -mod %q: %w", spec, err)
			}
			bh, err := parseBehavior(fs[1], false)
			if err != nil {
				return nil, nil, fmt.Errorf("bad -mod %q: %w", spec, err)
			}
			d1, err := strconv.ParseInt(fs[2], 10, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("bad -mod displacement %q", fs[2])
			}
			d2, err := strconv.ParseInt(fs[3], 10, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("bad -mod count %q", fs[3])
			}
			b.Mod(t, bh, d1, d2)
		case 'i':
			if dims == 0 {
				return nil, nil, fmt.Errorf("-indirect %q has no preceding -dim to attach to", spec)
			}
			fs := strings.Split(spec, ":")
			if len(fs) != 3 {
				return nil, nil, fmt.Errorf("bad -indirect %q: want target:behavior:v0,v1,...", spec)
			}
			t, err := parseTarget(fs[0])
			if err != nil {
				return nil, nil, fmt.Errorf("bad -indirect %q: %w", spec, err)
			}
			bh, err := parseBehavior(fs[1], true)
			if err != nil {
				return nil, nil, fmt.Errorf("bad -indirect %q: %w", spec, err)
			}
			var vals []uint64
			for _, v := range strings.Split(fs[2], ",") {
				x, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
				if err != nil {
					return nil, nil, fmt.Errorf("bad indirect value %q", v)
				}
				vals = append(vals, x)
			}
			origins[nextOrigin] = vals
			b.Indirect(t, bh, nextOrigin)
			nextOrigin++
		}
	}
	d, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return d, origins, nil
}

func chooseBase(s string) int {
	if strings.HasPrefix(s, "0x") {
		return 16
	}
	return 10
}

func splitInts(s string, n int) ([]int64, error) {
	fs := strings.Split(s, ":")
	if len(fs) != n {
		return nil, fmt.Errorf("expected %d colon-separated fields", n)
	}
	out := make([]int64, n)
	for i, f := range fs {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out[i] = v
	}
	return out, nil
}

func parseTarget(s string) (uve.Target, error) {
	switch s {
	case "offset":
		return uve.TargetOffset, nil
	case "size":
		return uve.TargetSize, nil
	case "stride":
		return uve.TargetStride, nil
	}
	return 0, fmt.Errorf("bad target %q (offset|size|stride)", s)
}

func parseBehavior(s string, indirect bool) (uve.Behavior, error) {
	switch s {
	case "add":
		if indirect {
			return uve.ModSetAdd, nil
		}
		return uve.ModAdd, nil
	case "sub":
		if indirect {
			return uve.ModSetSub, nil
		}
		return uve.ModSub, nil
	case "set":
		return uve.ModSetValue, nil
	}
	return 0, fmt.Errorf("bad behavior %q (add|sub|set)", s)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
