package main

import (
	"strings"
	"testing"
)

// Flag-ordering regression tests: -mod/-indirect attach to the most recent
// -dim, so a modifier with no preceding dimension must be a hard error (it
// used to be passed to the builder anyway), and malformed integers must be
// rejected rather than silently parsed as 0.

func TestModBeforeDimRejected(t *testing.T) {
	_, _, err := buildPattern(0, 4, []string{"msize:add:1:6", "d0:8:1"})
	if err == nil || !strings.Contains(err.Error(), "no preceding -dim") {
		t.Fatalf("want 'no preceding -dim' error, got %v", err)
	}
}

func TestIndirectBeforeDimRejected(t *testing.T) {
	_, _, err := buildPattern(0, 4, []string{"ioffset:set:5,1,9,2"})
	if err == nil || !strings.Contains(err.Error(), "no preceding -dim") {
		t.Fatalf("want 'no preceding -dim' error, got %v", err)
	}
}

func TestModAfterDimAccepted(t *testing.T) {
	d, _, err := buildPattern(0, 4, []string{"d0:0:1", "d0:6:10", "msize:add:1:6"})
	if err != nil {
		t.Fatalf("valid mod-after-dim pattern rejected: %v", err)
	}
	if d == nil {
		t.Fatal("nil descriptor for valid pattern")
	}
}

func TestIndirectAfterDimAccepted(t *testing.T) {
	d, origins, err := buildPattern(0, 4, []string{"d0:4:0", "ioffset:set:5,1,9,2"})
	if err != nil {
		t.Fatalf("valid indirect-after-dim pattern rejected: %v", err)
	}
	if d == nil {
		t.Fatal("nil descriptor for valid pattern")
	}
	if got := origins[30]; len(got) != 4 || got[0] != 5 || got[3] != 2 {
		t.Fatalf("origin values not captured: %v", got)
	}
}

func TestModBadIntegerRejected(t *testing.T) {
	_, _, err := buildPattern(0, 4, []string{"d0:8:1", "msize:add:x:6"})
	if err == nil || !strings.Contains(err.Error(), "displacement") {
		t.Fatalf("want displacement parse error, got %v", err)
	}
	_, _, err = buildPattern(0, 4, []string{"d0:8:1", "msize:add:1:y"})
	if err == nil || !strings.Contains(err.Error(), "count") {
		t.Fatalf("want count parse error, got %v", err)
	}
}

func TestDimBadIntegerRejected(t *testing.T) {
	_, _, err := buildPattern(0, 4, []string{"d0:eight:1"})
	if err == nil || !strings.Contains(err.Error(), "bad integer") {
		t.Fatalf("want bad integer error, got %v", err)
	}
}

func TestBadTargetAndBehaviorRejected(t *testing.T) {
	if _, _, err := buildPattern(0, 4, []string{"d0:8:1", "mwidth:add:1:6"}); err == nil {
		t.Fatal("bad target accepted")
	}
	if _, _, err := buildPattern(0, 4, []string{"d0:8:1", "msize:mul:1:6"}); err == nil {
		t.Fatal("bad behavior accepted")
	}
}
