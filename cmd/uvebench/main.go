// Command uvebench regenerates the paper's evaluation figures and tables
// (§VI) on the simulated Table I machines.
//
// Usage:
//
//	uvebench -exp fig8          # Fig 8 A–D across all 19 kernels
//	uvebench -exp fig8table     # Fig 8 left metadata table
//	uvebench -exp fig8e         # GEMM unrolling ablation
//	uvebench -exp fig9          # vector physical-register sensitivity
//	uvebench -exp fig10         # FIFO depth sensitivity
//	uvebench -exp fig11         # streaming cache-level sensitivity
//	uvebench -exp spm           # stream-processing-module sweep
//	uvebench -exp hw            # §VI-C storage accounting
//	uvebench -exp ablate        # beyond-paper design-choice ablations
//	uvebench -exp table1        # machine configuration
//	uvebench -exp all           # everything
//
// -scale N divides problem sizes by N for quick runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig8, fig8table, fig8e, fig9, fig10, fig11, spm, hw, table1, all)")
	scale := flag.Int("scale", 1, "divide problem sizes by this factor")
	verbose := flag.Bool("v", false, "print each run")
	flag.Parse()

	o := &bench.Options{Scale: *scale, Verbose: *verbose}
	run := func(id string) {
		switch id {
		case "table1":
			fmt.Println(bench.FormatTable1())
		case "fig8table":
			fmt.Println(bench.FormatFig8Table())
		case "fig8":
			fmt.Println(bench.FormatFig8(bench.Fig8(o)))
		case "fig8e":
			fmt.Println(bench.FormatSweep("Fig 8.E — UVE GEMM loop unrolling (speedup vs no unrolling)", bench.Fig8E(o)))
		case "fig9":
			fmt.Println(bench.FormatSweep("Fig 9 — sensitivity to vector physical registers (speedup vs 48 PRs)", bench.Fig9(o)))
		case "fig10":
			fmt.Println(bench.FormatSweep("Fig 10 — sensitivity to FIFO depth (speedup vs depth 8)", bench.Fig10(o)))
		case "fig11":
			fmt.Println(bench.FormatSweep("Fig 11 — sensitivity to streaming cache level (speedup vs L2)", bench.Fig11(o)))
		case "spm":
			fmt.Println(bench.FormatSweep("§VI-B — stream processing modules (speedup vs 2 modules)", bench.SPMSweep(o)))
		case "hw":
			fmt.Println(bench.FormatHW())
		case "ablate":
			fmt.Println(bench.FormatSweep("Ablations — baseline prefetchers off; engine restricted to 1 load port (speedup vs default)", bench.Ablations(o)))
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
	}
	if *exp == "all" {
		for _, id := range []string{"table1", "fig8table", "hw", "fig8", "fig8e", "fig9", "fig10", "fig11", "spm", "ablate"} {
			run(id)
		}
		return
	}
	run(*exp)
}
