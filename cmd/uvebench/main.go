// Command uvebench regenerates the paper's evaluation figures and tables
// (§VI) on the simulated Table I machines.
//
// Usage:
//
//	uvebench -exp fig8          # Fig 8 A–D across all 19 kernels
//	uvebench -exp fig8table     # Fig 8 left metadata table
//	uvebench -exp fig8e         # GEMM unrolling ablation
//	uvebench -exp fig9          # vector physical-register sensitivity
//	uvebench -exp fig10         # FIFO depth sensitivity
//	uvebench -exp fig11         # streaming cache-level sensitivity
//	uvebench -exp spm           # stream-processing-module sweep
//	uvebench -exp hw            # §VI-C storage accounting
//	uvebench -exp ablate        # beyond-paper design-choice ablations
//	uvebench -exp table1        # machine configuration
//	uvebench -stalls            # per-kernel cycle/stall attribution (Fig 8.C)
//	uvebench -exp faults        # seeded fault campaigns + state oracle
//	uvebench -exp all           # everything (except faults)
//
// -scale N divides problem sizes by N for quick runs. -j N sizes the
// worker pool that fans the independent simulations out across cores
// (default all cores; -j 1 is fully sequential — the output is
// byte-identical either way). -json emits machine-readable results for
// BENCH_*.json trajectory tracking instead of the text tables.
//
// -exp faults runs every kernel on UVE and SVE under a grid of seeded
// deterministic fault campaigns and checks each faulted run's final memory
// image against the fault-free run. -faults replaces the default campaign
// template (the grid still varies the seed); -watchdog tightens the
// forward-progress bound. The experiment is excluded from -exp all so the
// default output stays byte-stable.
//
// Runs whose measurements are degenerate (a zero cycle count, a non-finite
// summary value) are reported on stderr and make the process exit 1; the
// JSON document is still emitted, with the affected ratios pinned to 0
// rather than NaN/Inf, so downstream tooling never sees a marshal error.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/cliflags"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig8, fig8table, fig8e, fig9, fig10, fig11, spm, hw, table1, stalls, faults, all)")
	scale := flag.Int("scale", 1, "divide problem sizes by this factor")
	verbose := flag.Bool("v", false, "print each run")
	workers := cliflags.Workers(flag.CommandLine)
	jsonOut := cliflags.JSON(flag.CommandLine)
	faults := cliflags.AddFaults(flag.CommandLine)
	fid := cliflags.AddFidelity(flag.CommandLine)
	stalls := flag.Bool("stalls", false, "shorthand for -exp stalls")
	flag.Parse()

	plan, err := faults.Plan()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var timingFlags []string
	if *stalls {
		timingFlags = append(timingFlags, "-stalls")
	}
	if err := fid.RejectTimingFlags(timingFlags...); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fidelity, err := fid.Parse()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	o := &bench.Options{
		Scale: *scale, Verbose: *verbose && !*jsonOut, Workers: *workers,
		Faults: plan, Watchdog: faults.Watchdog,
	}

	if fidelity == sim.Functional {
		runFunctionalSweep(o, *jsonOut)
		return
	}

	ids := []string{*exp}
	if *stalls {
		ids = []string{"stalls"}
	} else if *exp == "all" {
		ids = bench.ExperimentIDs
	}

	// One shared Options means the runner's memo table spans the whole
	// invocation, so e.g. the Fig 9 48-PR reference reuses the Fig 8 run.
	var reports []bench.Report
	for _, id := range ids {
		text, rep, err := bench.RunExperiment(id, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		reports = append(reports, rep)
		if !*jsonOut {
			fmt.Println(text)
		}
	}

	if *jsonOut {
		doc := report.New("uvebench")
		doc.Bench = &report.Bench{
			Scale: *scale, Workers: o.Runner().Workers(),
			Runner: o.Runner().Stats(), Experiments: reports,
		}
		if err := emit(&doc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if degs := bench.Degenerate(reports); len(degs) > 0 {
		fmt.Fprintf(os.Stderr, "uvebench: %d degenerate measurement(s):\n", len(degs))
		for _, d := range degs {
			fmt.Fprintf(os.Stderr, "  %s\n", d)
		}
		os.Exit(1)
	}
}

// emit writes a report document to stdout in the canonical rendering.
func emit(doc *report.Document) error {
	b, err := doc.Marshal()
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(b)
	return err
}

// runFunctionalSweep is the -fidelity functional mode: the full
// kernel×variant matrix through the program-order tier — output checks and
// architectural digests, no cycle tables and no Degenerate gate (every
// timing measurement is deliberately zero on this tier).
func runFunctionalSweep(o *bench.Options, jsonOut bool) {
	rows := bench.FunctionalSweep(o)
	if jsonOut {
		doc := report.New("uvebench")
		doc.Bench = &report.Bench{
			Scale: o.Scale, Workers: o.Runner().Workers(),
			Runner: o.Runner().Stats(), Functional: rows,
		}
		if err := emit(&doc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		fmt.Println(bench.FormatFunctionalSweep(rows))
	}
	for _, r := range rows {
		if r.Err != "" {
			os.Exit(1)
		}
	}
}
