// Command uvebench regenerates the paper's evaluation figures and tables
// (§VI) on the simulated Table I machines.
//
// Usage:
//
//	uvebench -exp fig8          # Fig 8 A–D across all 19 kernels
//	uvebench -exp fig8table     # Fig 8 left metadata table
//	uvebench -exp fig8e         # GEMM unrolling ablation
//	uvebench -exp fig9          # vector physical-register sensitivity
//	uvebench -exp fig10         # FIFO depth sensitivity
//	uvebench -exp fig11         # streaming cache-level sensitivity
//	uvebench -exp spm           # stream-processing-module sweep
//	uvebench -exp hw            # §VI-C storage accounting
//	uvebench -exp ablate        # beyond-paper design-choice ablations
//	uvebench -exp table1        # machine configuration
//	uvebench -exp all           # everything
//
// -scale N divides problem sizes by N for quick runs. -j N sizes the
// worker pool that fans the independent simulations out across cores
// (default all cores; -j 1 is fully sequential — the output is
// byte-identical either way). -json emits machine-readable results for
// BENCH_*.json trajectory tracking instead of the text tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig8, fig8table, fig8e, fig9, fig10, fig11, spm, hw, table1, all)")
	scale := flag.Int("scale", 1, "divide problem sizes by this factor")
	verbose := flag.Bool("v", false, "print each run")
	workers := flag.Int("j", 0, "simulation worker pool size (0 = all cores, 1 = sequential)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON results")
	flag.Parse()

	o := &bench.Options{Scale: *scale, Verbose: *verbose && !*jsonOut, Workers: *workers}

	// Every experiment produces both a text rendering and a Report; one
	// shared Options means the runner's memo table spans the whole
	// invocation, so e.g. the Fig 9 48-PR reference reuses the Fig 8 run.
	run := func(id string) (string, bench.Report) {
		switch id {
		case "table1":
			t := bench.FormatTable1()
			return t, bench.Report{Experiment: id, Text: t}
		case "fig8table":
			t := bench.FormatFig8Table()
			return t, bench.Report{Experiment: id, Text: t}
		case "fig8":
			rows := bench.Fig8(o)
			return bench.FormatFig8(rows), bench.Report{Experiment: id, Fig8: rows, Summary: bench.Fig8Summary(rows)}
		case "fig8e":
			pts := bench.Fig8E(o)
			return bench.FormatSweep("Fig 8.E — UVE GEMM loop unrolling (speedup vs no unrolling)", pts),
				bench.Report{Experiment: id, Sweep: pts}
		case "fig9":
			pts := bench.Fig9(o)
			return bench.FormatSweep("Fig 9 — sensitivity to vector physical registers (speedup vs 48 PRs)", pts),
				bench.Report{Experiment: id, Sweep: pts}
		case "fig10":
			pts := bench.Fig10(o)
			return bench.FormatSweep("Fig 10 — sensitivity to FIFO depth (speedup vs depth 8)", pts),
				bench.Report{Experiment: id, Sweep: pts}
		case "fig11":
			pts := bench.Fig11(o)
			return bench.FormatSweep("Fig 11 — sensitivity to streaming cache level (speedup vs L2)", pts),
				bench.Report{Experiment: id, Sweep: pts}
		case "spm":
			pts := bench.SPMSweep(o)
			return bench.FormatSweep("§VI-B — stream processing modules (speedup vs 2 modules)", pts),
				bench.Report{Experiment: id, Sweep: pts}
		case "hw":
			t := bench.FormatHW()
			return t, bench.Report{Experiment: id, Text: t}
		case "ablate":
			pts := bench.Ablations(o)
			return bench.FormatSweep("Ablations — baseline prefetchers off; engine restricted to 1 load port (speedup vs default)", pts),
				bench.Report{Experiment: id, Sweep: pts}
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
			return "", bench.Report{}
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"table1", "fig8table", "hw", "fig8", "fig8e", "fig9", "fig10", "fig11", "spm", "ablate"}
	}

	var reports []bench.Report
	for _, id := range ids {
		text, rep := run(id)
		if *jsonOut {
			reports = append(reports, rep)
		} else {
			fmt.Println(text)
		}
	}

	if *jsonOut {
		doc := struct {
			Scale       int               `json:"scale"`
			Workers     int               `json:"workers"`
			Runner      bench.RunnerStats `json:"runner"`
			Experiments []bench.Report    `json:"experiments"`
		}{*scale, o.Runner().Workers(), o.Runner().Stats(), reports}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
