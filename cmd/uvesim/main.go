// Command uvesim runs one evaluation kernel on one simulated machine and
// prints its statistics.
//
// Usage:
//
//	uvesim -kernel C -variant UVE -size 32768
//	uvesim -kernel C -trace saxpy.json              # Chrome trace_event file
//	uvesim -kernel C -stalls                        # cycle attribution table
//	uvesim -kernel C -faults seed=7                 # seeded fault campaign
//	uvesim -kernel C -fidelity functional           # fast tier: results, no timing
//	uvesim -list
//
// -trace writes a cycle-level event trace (about:tracing / Perfetto JSON by
// default, a plain-text timeline with -trace-format text). -stalls appends
// the per-class stall attribution to the report. Neither perturbs the
// simulation: the stats lines printed for a traced run are byte-identical
// to an untraced one.
//
// -faults runs the kernel under seeded deterministic fault injection
// (NACKed line fetches, mid-stream page faults, DRAM latency spikes,
// forced stream pauses); the same spec reproduces the same run cycle for
// cycle, and the kernel's output check still passes — injection perturbs
// timing only. -watchdog bounds forward progress so an injection-induced
// livelock exits with a diagnostic instead of hanging.
//
// -fidelity functional runs the program-order interpreter instead of the
// detailed machine: final memory, committed counts and sanitizer collisions,
// but no cycles — so combining it with -trace or -stalls is a usage error.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliflags"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/trace"
)

// traceRingSize bounds the events retained for -trace; older events are
// dropped (and counted) once the ring wraps. Attribution is exact
// regardless — it folds every cycle as it happens.
const traceRingSize = 1 << 16

func main() {
	kid := flag.String("kernel", "C", "kernel ID (A..S, see -list)")
	variant := flag.String("variant", "UVE", "machine: UVE, SVE or NEON")
	size := flag.Int("size", 0, "problem size (0 = kernel default)")
	list := flag.Bool("list", false, "list kernels and exit")
	sanitize := cliflags.Sanitize(flag.CommandLine)
	tr := cliflags.AddTrace(flag.CommandLine)
	faults := cliflags.AddFaults(flag.CommandLine)
	fid := cliflags.AddFidelity(flag.CommandLine)
	stalls := flag.Bool("stalls", false, "print the per-class stall attribution after the stats")
	flag.Parse()
	if flag.NArg() > 0 {
		// Catch `-sanitize auto` style misspellings: boolean-shaped flags
		// need the -flag=value spelling, and a stray operand here would
		// silently run the wrong mode.
		fmt.Fprintf(os.Stderr, "unexpected arguments %q (mode-valued flags need -flag=value, e.g. -sanitize=auto)\n", flag.Args())
		os.Exit(2)
	}

	if *list {
		fmt.Printf("%-3s %-16s %-14s %s\n", "ID", "name", "domain", "pattern")
		for _, k := range kernels.All {
			fmt.Printf("%-3s %-16s %-14s %s (default n=%d)\n", k.ID, k.Name, k.Domain, k.Pattern, k.DefaultSize)
		}
		return
	}
	if err := tr.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Timing-only flags are usage errors on the functional tier, not
	// silent no-ops: a functional run has no cycles to trace or attribute.
	var timingFlags []string
	if tr.File != "" {
		timingFlags = append(timingFlags, "-trace")
	}
	if *stalls {
		timingFlags = append(timingFlags, "-stalls")
	}
	if err := fid.RejectTimingFlags(timingFlags...); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fidelity, err := fid.Parse()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	k := kernels.ByID(*kid)
	if k == nil {
		fmt.Fprintf(os.Stderr, "unknown kernel %q (try -list)\n", *kid)
		os.Exit(2)
	}
	v, err := cliflags.Variant(*variant)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	plan, err := faults.Plan()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	col := tr.Collector(traceRingSize, *stalls)

	var opts *sim.Options
	if sanitize.Mode != sim.SanitizeOff || col != nil || plan != nil || faults.Watchdog > 0 || fidelity != sim.Cycle {
		o := sim.DefaultOptions(v)
		o.Fidelity = fidelity
		o.Sanitize = sanitize.Mode
		if col != nil {
			o.Trace = col
		}
		o.Faults = plan
		o.Watchdog = faults.Watchdog
		opts = &o
	}
	res, err := sim.Run(k, v, *size, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if fidelity == sim.Functional {
		// The functional tier answers "what did the program compute"; only
		// the architectural lines of the report apply.
		fmt.Printf("%s (%s) on %s, n=%d [functional]\n", k.Name, k.Domain, v, res.Size)
		fmt.Printf("  committed insts:   %d\n", res.Committed)
		fmt.Printf("  output check:      ok\n")
		printSanitizer(sanitize, res)
		return
	}
	fmt.Printf("%s (%s) on %s, n=%d\n", k.Name, k.Domain, v, res.Size)
	fmt.Printf("  cycles:            %d\n", res.Cycles)
	fmt.Printf("  committed insts:   %d (IPC %.2f)\n", res.Committed, res.IPC())
	fmt.Printf("  rename blocks/cyc: %.3f (stream waits: %d cycles)\n",
		res.Core.RenameBlocksPerCycle(), res.Core.StreamWait)
	fmt.Printf("  branches:          %d resolved, %d mispredicted\n",
		res.Core.BranchesResolved, res.Core.Mispredicts)
	fmt.Printf("  L1-D:              %d hits, %d misses\n", res.L1.Hits, res.L1.Misses)
	fmt.Printf("  L2:                %d hits, %d misses\n", res.L2.Hits, res.L2.Misses)
	fmt.Printf("  DRAM:              %d lines read, %d written, bus util %.1f%%\n",
		res.DRAM.Reads, res.DRAM.Writes, 100*res.BusUtil)
	if v == kernels.UVE {
		fmt.Printf("  engine:            %d configs, %d chunks loaded, %d stored\n",
			res.Eng.ConfigsCompleted, res.Eng.ChunksLoaded, res.Eng.ChunksStored)
		fmt.Printf("                     %d line requests (%d coalesced reuses)\n",
			res.Eng.LineRequests, res.Eng.CoalescedReuses)
	}
	if plan != nil {
		fmt.Printf("  faults:            plan %s\n", plan)
		fmt.Printf("                     injected %s\n", res.Faults.String())
	}
	printSanitizer(sanitize, res)
	if *stalls {
		printStalls(col, res.Cycles)
	}
	if tr.File != "" {
		if err := writeTrace(tr.File, tr.Format, col); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events retained (%d dropped), wrote %s\n",
			len(col.Events()), col.Dropped(), tr.File)
	}
}

// printSanitizer renders the sanitizer line: the collision list, or the
// elision note when -sanitize auto proved tracking redundant.
func printSanitizer(f *cliflags.SanitizeFlag, res *sim.Result) {
	if f.Mode == sim.SanitizeOff {
		return
	}
	if res.SanitizerElided {
		fmt.Printf("  sanitizer:         elided (safety certificate: all pairs disjoint)\n")
		return
	}
	fmt.Printf("  sanitizer:         %d collisions\n", len(res.Collisions))
	for _, c := range res.Collisions {
		fmt.Printf("                     %s\n", c)
	}
}

// printStalls renders the run's cycle attribution: every pre-halt cycle in
// exactly one class, plus the post-halt store-drain tail shown separately.
func printStalls(col *trace.Collector, cycles int64) {
	att := col.Attribution()
	tot := att.Totals()
	fmt.Printf("  stall attribution (%d of %d cycles classified):\n",
		att.AttributedExcludingDrain(), cycles)
	for cl := trace.StallClass(0); cl < trace.ClassCount; cl++ {
		if cl == trace.ClassDrain || tot[cl] == 0 {
			continue
		}
		pct := 0.0
		if cycles > 0 {
			pct = 100 * float64(tot[cl]) / float64(cycles)
		}
		fmt.Printf("    %-10s %10d  %5.1f%%\n", cl, tot[cl], pct)
	}
	if d := tot[trace.ClassDrain]; d > 0 {
		fmt.Printf("    %-10s %10d  (post-halt, outside cycle count)\n", trace.ClassDrain, d)
	}
}

func writeTrace(path, format string, col *trace.Collector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if format == "chrome" {
		err = trace.WriteChrome(f, col)
	} else {
		err = trace.WriteText(f, col)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
