// Command uvesim runs one evaluation kernel on one simulated machine and
// prints its statistics.
//
// Usage:
//
//	uvesim -kernel C -variant UVE -size 32768
//	uvesim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/kernels"
	"repro/internal/sim"
)

func main() {
	kid := flag.String("kernel", "C", "kernel ID (A..S, see -list)")
	variant := flag.String("variant", "UVE", "machine: UVE, SVE or NEON")
	size := flag.Int("size", 0, "problem size (0 = kernel default)")
	list := flag.Bool("list", false, "list kernels and exit")
	sanitize := flag.Bool("sanitize", false,
		"shadow-track every byte live streams touch and report runtime collisions (UVE only; slow)")
	flag.Parse()

	if *list {
		fmt.Printf("%-3s %-16s %-14s %s\n", "ID", "name", "domain", "pattern")
		for _, k := range kernels.All {
			fmt.Printf("%-3s %-16s %-14s %s (default n=%d)\n", k.ID, k.Name, k.Domain, k.Pattern, k.DefaultSize)
		}
		return
	}
	k := kernels.ByID(*kid)
	if k == nil {
		fmt.Fprintf(os.Stderr, "unknown kernel %q (try -list)\n", *kid)
		os.Exit(2)
	}
	var v kernels.Variant
	switch *variant {
	case "UVE", "uve":
		v = kernels.UVE
	case "SVE", "sve":
		v = kernels.SVE
	case "NEON", "neon":
		v = kernels.NEON
	default:
		fmt.Fprintf(os.Stderr, "unknown variant %q\n", *variant)
		os.Exit(2)
	}

	var opts *sim.Options
	if *sanitize {
		o := sim.DefaultOptions(v)
		o.Sanitize = true
		opts = &o
	}
	res, err := sim.Run(k, v, *size, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s (%s) on %s, n=%d\n", k.Name, k.Domain, v, res.Size)
	fmt.Printf("  cycles:            %d\n", res.Cycles)
	fmt.Printf("  committed insts:   %d (IPC %.2f)\n", res.Committed, res.IPC())
	fmt.Printf("  rename blocks/cyc: %.3f (stream waits: %d cycles)\n",
		res.Core.RenameBlocksPerCycle(), res.Core.StreamWait)
	fmt.Printf("  branches:          %d resolved, %d mispredicted\n",
		res.Core.BranchesResolved, res.Core.Mispredicts)
	fmt.Printf("  L1-D:              %d hits, %d misses\n", res.L1.Hits, res.L1.Misses)
	fmt.Printf("  L2:                %d hits, %d misses\n", res.L2.Hits, res.L2.Misses)
	fmt.Printf("  DRAM:              %d lines read, %d written, bus util %.1f%%\n",
		res.DRAM.Reads, res.DRAM.Writes, 100*res.BusUtil)
	if v == kernels.UVE {
		fmt.Printf("  engine:            %d configs, %d chunks loaded, %d stored\n",
			res.Eng.ConfigsCompleted, res.Eng.ChunksLoaded, res.Eng.ChunksStored)
		fmt.Printf("                     %d line requests (%d coalesced reuses)\n",
			res.Eng.LineRequests, res.Eng.CoalescedReuses)
	}
	if *sanitize {
		fmt.Printf("  sanitizer:         %d collisions\n", len(res.Collisions))
		for _, c := range res.Collisions {
			fmt.Printf("                     %s\n", c)
		}
	}
}
