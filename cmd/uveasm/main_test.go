package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/wire"
)

// runCLI invokes run() the way main does, capturing both streams.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// encodeSaxpy writes the C/uve corpus entry to dir and returns its path.
func encodeSaxpy(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "C-UVE-96.uve")
	code, stdout, stderr := runCLI(t, "-kernel", "C", "-variant", "uve", "-o", path)
	if code != 0 {
		t.Fatalf("encode: exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "C-UVE-96") || !strings.Contains(stdout, path) {
		t.Fatalf("encode stdout %q: want entry name and output path", stdout)
	}
	return path
}

func TestEncodeDisassembleLintVerify(t *testing.T) {
	dir := t.TempDir()
	path := encodeSaxpy(t, dir)

	code, stdout, stderr := runCLI(t, "-d", path)
	if code != 0 {
		t.Fatalf("-d: exit %d, stderr %q", code, stderr)
	}
	for _, want := range []string{"saxpy", "streams:", "u0 @", "context:", "extent ["} {
		if !strings.Contains(stdout, want) {
			t.Errorf("-d output missing %q:\n%s", want, stdout)
		}
	}

	code, stdout, stderr = runCLI(t, "-lint", path)
	if code != 0 {
		t.Fatalf("-lint: exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "certificate: safe=true") {
		t.Errorf("-lint output missing safe certificate:\n%s", stdout)
	}

	code, stdout, stderr = runCLI(t, "-verify", path)
	if code != 0 {
		t.Fatalf("-verify: exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "ok (") || !strings.Contains(stdout, "verdicts identical") {
		t.Errorf("-verify stdout %q: want canonical-ok line", stdout)
	}
}

func TestDisassembleDescriptorBlob(t *testing.T) {
	d := descriptor.New(0x1000, arch.W8, descriptor.Load).
		Dim(0, 96, 1).MustBuild()
	b, err := wire.EncodeDescriptor(d)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "d.uve")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runCLI(t, "-d", path)
	if code != 0 {
		t.Fatalf("-d descriptor: exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "descriptor ") {
		t.Errorf("-d descriptor stdout %q: want descriptor line", stdout)
	}
}

func TestUsageAndFailureExits(t *testing.T) {
	if code, _, stderr := runCLI(t); code != 2 || !strings.Contains(stderr, "usage:") {
		t.Errorf("no args: exit %d, stderr %q; want 2 + usage", code, stderr)
	}
	if code, _, _ := runCLI(t, "-kernel", "no-such-kernel", "-o", filepath.Join(t.TempDir(), "x.uve")); code != 2 {
		t.Errorf("unknown kernel: exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "-d"); code != 2 {
		t.Errorf("-d with no files: exit %d, want 2", code)
	}

	// A corrupt blob must fail decode with a positioned error, not panic.
	bad := filepath.Join(t.TempDir(), "bad.uve")
	if err := os.WriteFile(bad, []byte("UVEW\x01garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"-d", "-lint", "-verify"} {
		code, _, stderr := runCLI(t, mode, bad)
		if code != 2 {
			t.Errorf("%s corrupt blob: exit %d, want 2", mode, code)
		}
		if !strings.Contains(stderr, "wire: offset") {
			t.Errorf("%s corrupt blob: stderr %q lacks positioned wire error", mode, stderr)
		}
	}

	// A truncated but well-started blob (valid prefix of a real one).
	dir := t.TempDir()
	path := encodeSaxpy(t, dir)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "C-UVE-96-trunc.uve")
	if err := os.WriteFile(trunc, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runCLI(t, "-d", trunc); code != 2 {
		t.Errorf("-d truncated blob: exit %d, want 2", code)
	}
}

func TestVerifyRejectsNonCorpusName(t *testing.T) {
	dir := t.TempDir()
	src := encodeSaxpy(t, dir)
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	odd := filepath.Join(dir, "mine.uve")
	if err := os.WriteFile(odd, b, 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI(t, "-verify", odd)
	if code != 2 || !strings.Contains(stderr, "not a corpus blob name") {
		t.Errorf("-verify non-corpus name: exit %d, stderr %q; want 2 + name error", code, stderr)
	}
}
