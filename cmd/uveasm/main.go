// Command uveasm moves kernel programs between their in-memory form and
// the canonical binary wire format (internal/wire).
//
// Usage:
//
//	uveasm -o corpus/                      # encode the full kernel corpus
//	uveasm -kernel C -variant uve -o saxpy.uve   # encode one program
//	uveasm -d saxpy.uve                    # disassemble a blob
//	uveasm -lint saxpy.uve                 # decode + static verification
//	uveasm -verify corpus/*.uve            # canonicality + verdict identity
//
// -d prints the program listing (labels, mnemonics), the stream descriptors
// reassembled from the ss.cfg µOp runs, and the embedded build context
// (argument registers and buffer extents). It also disassembles standalone
// descriptor blobs (magic "UVED").
//
// -lint re-runs the static verifier over the decoded program using the
// blob's embedded context — the blob is self-contained, no kernel source
// needed — and prints diagnostics and the safety certificate.
//
// -verify is the corpus gate: for each <ID>-<VARIANT>-<size>.uve file it
// checks that re-encoding the decoded unit reproduces the file byte for
// byte, that rebuilding the kernel from source encodes to those same bytes,
// and that the decoded program earns lint verdicts identical to the
// original's.
//
// Exit status: 0 on success, 1 when -lint finds errors or -verify finds a
// mismatch, 2 on usage, build or decode failure.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/lint"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/wire"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("uveasm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "encode: output .uve file (with -kernel) or corpus directory (without)")
	dis := fs.Bool("d", false, "disassemble the .uve blobs given as arguments")
	lintFlag := fs.Bool("lint", false, "decode and statically verify the .uve blobs given as arguments")
	verify := fs.Bool("verify", false, "verify canonicality and lint-verdict identity of corpus .uve blobs")
	kid := fs.String("kernel", "", "kernel ID or name (single-program -o mode)")
	variant := fs.String("variant", "uve", "variant for -kernel: uve, sve or neon")
	size := fs.Int("size", 0, "problem size for -kernel (0 = the corpus size)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *dis:
		return disassemble(fs.Args(), stdout, stderr)
	case *lintFlag:
		return lintBlobs(fs.Args(), stdout, stderr)
	case *verify:
		return verifyBlobs(fs.Args(), stdout, stderr)
	case *out != "" && *kid != "":
		return encodeOne(*kid, *variant, *size, *out, stdout, stderr)
	case *out != "":
		return encodeCorpus(*out, stdout, stderr)
	}
	fmt.Fprintln(stderr, "usage: uveasm -o <dir> | uveasm -kernel <ID> [-variant v] [-size N] -o <file> | uveasm -d|-lint|-verify <file>...")
	return 2
}

// buildEntry assembles one kernel/variant pair into a corpus entry.
func buildEntry(kid, variant string, size int) (*kernels.CorpusEntry, error) {
	k := kernels.ByID(kid)
	if k == nil {
		for _, c := range kernels.All {
			if c.Name == kid {
				k = c
				break
			}
		}
	}
	if k == nil {
		return nil, fmt.Errorf("unknown kernel %q (try uvesim -list)", kid)
	}
	var v kernels.Variant
	if err := v.UnmarshalText([]byte(strings.ToUpper(variant))); err != nil {
		return nil, err
	}
	if size <= 0 {
		size = kernels.CorpusSize
	}
	h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
	inst := k.Build(h, v, size)
	if inst.Err != nil {
		return nil, fmt.Errorf("%s/%s n=%d: build: %w", k.ID, v, size, inst.Err)
	}
	return &kernels.CorpusEntry{Kernel: k, Variant: v, Size: size, Inst: inst, Extents: h.Mem.Extents()}, nil
}

func writeBlob(path string, e *kernels.CorpusEntry) (int, error) {
	b, err := wire.EncodeUnit(e.Unit())
	if err != nil {
		return 0, fmt.Errorf("%s: encode: %w", e.Name(), err)
	}
	return len(b), os.WriteFile(path, b, 0o644)
}

func encodeOne(kid, variant string, size int, out string, stdout, stderr io.Writer) int {
	e, err := buildEntry(kid, variant, size)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	n, err := writeBlob(out, e)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	fmt.Fprintf(stdout, "%s: %d insts, %d bytes -> %s\n", e.Name(), e.Inst.Prog.Len(), n, out)
	return 0
}

func encodeCorpus(dir string, stdout, stderr io.Writer) int {
	entries, err := kernels.Corpus()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	total := 0
	for i := range entries {
		e := &entries[i]
		n, err := writeBlob(filepath.Join(dir, e.Name()+".uve"), e)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		total += n
	}
	fmt.Fprintf(stdout, "wrote %d programs (%d bytes) to %s\n", len(entries), total, dir)
	return 0
}

func disassemble(files []string, stdout, stderr io.Writer) int {
	if len(files) == 0 {
		fmt.Fprintln(stderr, "uveasm -d: no input files")
		return 2
	}
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if bytes.HasPrefix(b, []byte(wire.MagicDescriptor)) {
			d, err := wire.DecodeDescriptor(b)
			if err != nil {
				fmt.Fprintf(stderr, "%s: %v\n", f, err)
				return 2
			}
			fmt.Fprintf(stdout, "descriptor %s\n", d)
			continue
		}
		u, err := wire.DecodeUnit(b)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", f, err)
			return 2
		}
		fmt.Fprint(stdout, u.Prog.String())
		printStreams(stdout, u.Prog)
		printContext(stdout, u)
	}
	return 0
}

// printStreams reassembles each stream descriptor from its run of ss.cfg
// µOps (start part through end part) and prints the recovered pattern.
func printStreams(w io.Writer, p *program.Program) {
	open := map[int][]*isa.StreamCfgPart{}
	header := false
	for pc := range p.Insts {
		in := &p.Insts[pc]
		if in.Cfg == nil {
			continue
		}
		c := in.Cfg
		open[c.Stream] = append(open[c.Stream], c)
		if !c.End {
			continue
		}
		parts := open[c.Stream]
		delete(open, c.Stream)
		if !header {
			fmt.Fprintln(w, "streams:")
			header = true
		}
		d, err := isa.RebuildDescriptor(parts)
		if err != nil {
			fmt.Fprintf(w, "  u%d @%d: <broken config: %v>\n", c.Stream, pc, err)
			continue
		}
		fmt.Fprintf(w, "  u%d @%d: %s\n", c.Stream, pc, d)
	}
}

func printContext(w io.Writer, u *wire.Unit) {
	if len(u.IntArgs)+len(u.FPArgs)+len(u.Extents) == 0 {
		return
	}
	fmt.Fprintln(w, "context:")
	for _, a := range u.IntArgs {
		fmt.Fprintf(w, "  int  x%-2d = %#x\n", a.Reg, a.Val)
	}
	for _, a := range u.FPArgs {
		fmt.Fprintf(w, "  fp   f%-2d = %v (%s)\n", a.Reg, a.Val, a.Width)
	}
	for _, e := range u.Extents {
		fmt.Fprintf(w, "  extent [%#x, %#x) %d bytes\n", e.Base, e.Base+uint64(e.Size), e.Size)
	}
}

// lintOptions reconstitutes verification options from a blob's embedded
// context, making the blob self-contained for static verification.
func lintOptions(u *wire.Unit) *lint.Options {
	opts := &lint.Options{EntryIntVals: map[int]uint64{}, Prove: true}
	for _, a := range u.IntArgs {
		opts.EntryInt = append(opts.EntryInt, a.Reg)
		opts.EntryIntVals[a.Reg] = a.Val
	}
	for _, a := range u.FPArgs {
		opts.EntryFP = append(opts.EntryFP, a.Reg)
	}
	for _, e := range u.Extents {
		opts.Extents = append(opts.Extents, lint.Extent{Base: e.Base, Size: e.Size})
	}
	return opts
}

func lintBlobs(files []string, stdout, stderr io.Writer) int {
	if len(files) == 0 {
		fmt.Fprintln(stderr, "uveasm -lint: no input files")
		return 2
	}
	status := 0
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		u, err := wire.DecodeUnit(b)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", f, err)
			return 2
		}
		diags, deps := lint.Analyze(u.Prog, lintOptions(u))
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%s\n", u.Prog.Name, d)
		}
		c := lint.Certify(diags, deps)
		fmt.Fprintf(stdout, "%s: certificate: safe=%v collision-free=%v (%d pairs: %d disjoint, %d ordered, %d unknown, %d hazard)\n",
			u.Prog.Name, c.Safe, c.CollisionFree, c.Pairs, c.Disjoint, c.Ordered, c.Unknown, c.Hazard)
		if lint.HasErrors(diags) {
			status = 1
		}
	}
	return status
}

// parseCorpusName splits a corpus file stem <ID>-<VARIANT>-<size> back
// into its build parameters.
func parseCorpusName(path string) (kid, variant string, size int, err error) {
	stem := strings.TrimSuffix(filepath.Base(path), ".uve")
	parts := strings.Split(stem, "-")
	if len(parts) < 3 {
		return "", "", 0, fmt.Errorf("%s: not a corpus blob name (<ID>-<VARIANT>-<size>.uve)", path)
	}
	size, err = strconv.Atoi(parts[len(parts)-1])
	if err != nil {
		return "", "", 0, fmt.Errorf("%s: bad size in corpus blob name: %w", path, err)
	}
	return strings.Join(parts[:len(parts)-2], "-"), parts[len(parts)-2], size, nil
}

func verifyBlobs(files []string, stdout, stderr io.Writer) int {
	if len(files) == 0 {
		fmt.Fprintln(stderr, "uveasm -verify: no input files")
		return 2
	}
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		u, err := wire.DecodeUnit(b)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", f, err)
			return 2
		}
		reenc, err := wire.EncodeUnit(u)
		if err != nil {
			fmt.Fprintf(stderr, "%s: re-encode: %v\n", f, err)
			return 1
		}
		if !bytes.Equal(reenc, b) {
			fmt.Fprintf(stderr, "%s: re-encoding differs from the file (non-canonical blob)\n", f)
			return 1
		}
		kid, variant, size, err := parseCorpusName(f)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		e, err := buildEntry(kid, variant, size)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		rebuilt, err := wire.EncodeUnit(e.Unit())
		if err != nil {
			fmt.Fprintf(stderr, "%s: encode rebuilt kernel: %v\n", f, err)
			return 1
		}
		if !bytes.Equal(rebuilt, b) {
			fmt.Fprintf(stderr, "%s: blob differs from a fresh build of %s\n", f, e.Name())
			return 1
		}
		diags, deps := e.Inst.Relint(u.Prog)
		if !reflect.DeepEqual(diags, e.Inst.Diags) || !reflect.DeepEqual(deps, e.Inst.Deps) {
			fmt.Fprintf(stderr, "%s: decoded program earns different lint verdicts than the original\n", f)
			return 1
		}
		fmt.Fprintf(stdout, "%s: ok (%d bytes, canonical, verdicts identical)\n", f, len(b))
	}
	return 0
}
