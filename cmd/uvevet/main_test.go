package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func vetSource(t *testing.T, src string) []finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return vetFiles(fset, []*ast.File{f})
}

func wantFinding(t *testing.T, fs []finding, substr string) {
	t.Helper()
	for _, f := range fs {
		if strings.Contains(f.msg, substr) {
			return
		}
	}
	t.Errorf("no finding containing %q in %v", substr, fs)
}

func TestTimeNow(t *testing.T) {
	fs := vetSource(t, `package p
import "time"
func f() time.Time { return time.Now() }
func g(s time.Time) time.Duration { return time.Since(s) }
`)
	if len(fs) != 2 {
		t.Fatalf("want 2 findings, got %v", fs)
	}
	wantFinding(t, fs, "time.Now")
	wantFinding(t, fs, "time.Since")
}

func TestGlobalRand(t *testing.T) {
	fs := vetSource(t, `package p
import "math/rand"
func f() int { return rand.Intn(7) }
func ok() *rand.Rand { return rand.New(rand.NewSource(1)) }
`)
	if len(fs) != 1 {
		t.Fatalf("want 1 finding, got %v", fs)
	}
	wantFinding(t, fs, "rand.Intn")
}

func TestRenamedImports(t *testing.T) {
	fs := vetSource(t, `package p
import (
	clock "time"
	mrand "math/rand"
)
func f() { _ = clock.Now(); _ = mrand.Float64() }
`)
	if len(fs) != 2 {
		t.Fatalf("want 2 findings, got %v", fs)
	}
}

func TestMapRangePrint(t *testing.T) {
	fs := vetSource(t, `package p
import "fmt"
func f(m map[string]int) {
	x := map[string]int{}
	for k, v := range x {
		fmt.Printf("%s=%d\n", k, v)
	}
}
`)
	if len(fs) != 1 {
		t.Fatalf("want 1 finding, got %v", fs)
	}
	wantFinding(t, fs, "map-range")
}

// The original Degenerate() shape: a printf-style closure called inside a
// map-range over a struct's map field — the class of bug the check exists
// for.
func TestMapFieldRangeFormattedHelper(t *testing.T) {
	fs := vetSource(t, `package p
type Report struct{ Summary map[string]float64 }
func f(rep Report, add func(string, ...any)) {
	for k, v := range rep.Summary {
		add("%s: summary %q is non-finite", k, v)
	}
}
`)
	if len(fs) != 1 {
		t.Fatalf("want 1 finding, got %v", fs)
	}
	wantFinding(t, fs, "map-range")
}

// The canonical fix — collect, sort, range the slice — must stay clean,
// as must map-ranges that only collect.
func TestSortedIterationClean(t *testing.T) {
	fs := vetSource(t, `package p
import (
	"fmt"
	"sort"
)
func f(m map[string]int) {
	keys := make([]string, 0, len(m))
	seen := make(map[string]bool)
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}
`)
	if len(fs) != 0 {
		t.Fatalf("want no findings, got %v", fs)
	}
}

// The pinned bug shape for check 4: an analyzer builds its returned
// diagnostic around the scratch slice the caller handed in — once the
// caller reuses the buffer, the diagnostic silently rewrites itself.
func TestAliasedCaptureInReturn(t *testing.T) {
	fs := vetSource(t, `package p
type Diag struct{ PCs []int }
func analyze(pcs []int) []Diag {
	var out []Diag
	out = append(out, Diag{PCs: pcs})
	return out
}
func direct(pcs []int) Diag { return Diag{PCs: pcs} }
func ptr(pcs []int) *Diag { return &Diag{PCs: pcs} }
`)
	if len(fs) != 3 {
		t.Fatalf("want 3 findings, got %v", fs)
	}
	wantFinding(t, fs, "PCs aliases slice/map parameter pcs")
}

// Copies, non-returned locals, and non-slice parameters must stay clean.
func TestAliasedCaptureClean(t *testing.T) {
	fs := vetSource(t, `package p
type Diag struct{ PCs []int; N int }
func copied(pcs []int) Diag {
	return Diag{PCs: append([]int(nil), pcs...)}
}
func scratch(pcs []int) int {
	tmp := Diag{PCs: pcs} // never returned: aliasing is function-local
	return len(tmp.PCs)
}
func scalar(n int) Diag { return Diag{N: n} }
`)
	if len(fs) != 0 {
		t.Fatalf("want no findings, got %v", fs)
	}
}

// The pinned bug shape for check 5: %v flattens an error another frame
// wants to errors.Is against; %w and non-error operands stay clean.
func TestErrorfNoWrap(t *testing.T) {
	fs := vetSource(t, `package p
import "fmt"
type inst struct{ Err error }
func f(err error) error { return fmt.Errorf("run failed: %v", err) }
func g(i inst) error { return fmt.Errorf("build: %s", i.Err) }
func wrapped(err error) error { return fmt.Errorf("run failed: %w", err) }
func value(n int) error { return fmt.Errorf("bad size: %v", n) }
`)
	if len(fs) != 2 {
		t.Fatalf("want 2 findings, got %v", fs)
	}
	wantFinding(t, fs, "fmt.Errorf formats err")
	wantFinding(t, fs, "fmt.Errorf formats Err")
}

// The pinned bug shape for check 6: the Program.String label bug. A
// pc→labels back-map is filled by ranging the label map; the per-pc
// slices inherit map order and the rendered listing differs run to run.
func TestUnsortedCollectBackMap(t *testing.T) {
	fs := vetSource(t, `package p
type Program struct{ Labels map[string]int }
func render(p Program) map[int][]string {
	back := map[int][]string{}
	for name, pc := range p.Labels {
		back[pc] = append(back[pc], name)
	}
	return back
}
`)
	if len(fs) != 1 {
		t.Fatalf("want 1 finding, got %v", fs)
	}
	wantFinding(t, fs, "appended into back, never sorted")
}

// The shipped fix — collect the keys, sort, then build the back-map from
// the sorted slice — must stay clean: the sort call sanctions the
// collection, and the second loop ranges a slice, not a map.
func TestUnsortedCollectSortedClean(t *testing.T) {
	fs := vetSource(t, `package p
import "sort"
type Program struct{ Labels map[string]int }
func render(p Program) map[int][]string {
	names := make([]string, 0, len(p.Labels))
	for name := range p.Labels {
		names = append(names, name)
	}
	sort.Strings(names)
	back := map[int][]string{}
	for _, name := range names {
		back[p.Labels[name]] = append(back[p.Labels[name]], name)
	}
	return back
}
`)
	if len(fs) != 0 {
		t.Fatalf("want no findings, got %v", fs)
	}
}

// Appending values unrelated to the iteration variables stays clean: only
// the key/value themselves carry the map's order.
func TestUnsortedCollectUnrelatedAppendClean(t *testing.T) {
	fs := vetSource(t, `package p
func f(m map[string]int) int {
	var ticks []int
	n := 0
	for range m {
		ticks = append(ticks, n)
		n++
	}
	return len(ticks)
}
`)
	if len(fs) != 0 {
		t.Fatalf("want no findings, got %v", fs)
	}
}

func TestLocalMakeMapDetected(t *testing.T) {
	fs := vetSource(t, `package p
import "fmt"
func f() {
	var m map[int]int
	for k := range m {
		fmt.Sprint(k)
	}
}
`)
	if len(fs) != 1 {
		t.Fatalf("want 1 finding, got %v", fs)
	}
}
