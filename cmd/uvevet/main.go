// Command uvevet is the repo's determinism vet: the simulator must be a
// pure function of (program, configuration, seed), so its packages may not
// observe wall-clock time, draw from the global (unseeded) math/rand
// source, or let Go's randomized map iteration order leak into rendered
// reports. go vet has no such checks and golang.org/x/tools is not a
// dependency, so this is a small stdlib-only AST walk.
//
// Checks:
//
//  1. time.Now (and time.Since/time.Until, which call it) — wall-clock
//     reads make runs unreproducible.
//  2. Global math/rand draws (rand.Intn, rand.Float64, rand.Shuffle, …) —
//     the process-global source is unseeded; use rand.New(rand.NewSource(seed)).
//  3. Map iteration that prints or formats inside the loop body — the
//     canonical fix is collecting the keys, sorting, then ranging the
//     slice. Map detection is package-local and allowlist-shaped (local
//     make/literal/var declarations and struct fields declared in the
//     scanned package), so it cannot false-positive on slices.
//  4. Slice/map parameters captured into a returned composite literal
//     without copying — returned diagnostics and reports must own their
//     storage, or a caller mutating its buffer retroactively rewrites
//     them. The fix is an explicit copy (append(nil, s...), maps.Clone).
//  5. fmt.Errorf calls that format an error-shaped operand with %v/%s and
//     wrap nothing — %w keeps the chain visible to errors.Is/As.
//  6. Map-range loops that append the iteration key/value into a
//     collection the function never sorts — the slice inherits map order.
//     (This is the shape of the Program.String label-rendering bug: a
//     pc→labels back-map built by ranging the label map.) The canonical
//     collect-sort-range fix stays clean because the sort call sanctions
//     the collection.
//
// Usage: uvevet [dir ...] — defaults to the simulation packages. Exit 1
// when any finding is reported, 0 when clean.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// defaultDirs are the determinism-critical packages — everything that
// executes programs or renders measurement reports, the static analyzers
// whose returned diagnostics the capture check (4) guards, and the
// serialization path (program/descriptor/kernels/wire/trace), where map
// order leaking into rendered or encoded bytes breaks the wire format's
// canonical-form guarantee, plus the content-addressed result path
// (report/store), where nondeterministic payload bytes would break the
// byte-identical-reports guarantee. internal/serve is deliberately
// absent: the daemon legitimately reads the clock (rate limiting, job
// timeouts) and never renders payload bytes itself.
var defaultDirs = []string{
	"internal/sim", "internal/cpu", "internal/engine",
	"internal/mem", "internal/bench", "internal/funcsim",
	"internal/lint", "internal/cost", "internal/absint",
	"internal/program", "internal/descriptor", "internal/trace",
	"internal/kernels", "internal/wire", "internal/report",
	"internal/store",
}

// globalRandFuncs are the math/rand top-level draws backed by the
// process-global source. Constructors (New, NewSource, NewZipf) are fine.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
}

// fmtOutputFuncs format or print — inside a map-range body they serialize
// the nondeterministic iteration order.
var fmtOutputFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Errorf": true, "Appendf": true,
}

// writerMethods are the io/strings.Builder sinks that serialize order.
var writerMethods = map[string]bool{
	"WriteString": true, "WriteByte": true, "WriteRune": true, "Write": true,
	"Encode": true,
}

type finding struct {
	pos token.Position
	msg string
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	var findings []finding
	for _, dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uvevet: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, pkg := range pkgs {
			var files []*ast.File
			var names []string
			for name := range pkg.Files {
				names = append(names, name)
			}
			// Sorted order: the vet's own output must be deterministic.
			sortStrings(names)
			for _, name := range names {
				files = append(files, pkg.Files[name])
			}
			findings = append(findings, vetFiles(fset, files)...)
		}
	}
	for _, f := range findings {
		rel := f.pos.Filename
		if wd, err := os.Getwd(); err == nil {
			if r, err := filepath.Rel(wd, rel); err == nil {
				rel = r
			}
		}
		fmt.Printf("%s:%d:%d: %s\n", rel, f.pos.Line, f.pos.Column, f.msg)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// vetFiles runs every check over one package's files.
func vetFiles(fset *token.FileSet, files []*ast.File) []finding {
	mapFields := collectMapFields(files)
	var out []finding
	for _, f := range files {
		timeName, randName := importNames(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if pkg, ok := sel.X.(*ast.Ident); ok {
					if timeName != "" && pkg.Name == timeName &&
						(sel.Sel.Name == "Now" || sel.Sel.Name == "Since" || sel.Sel.Name == "Until") {
						out = append(out, finding{fset.Position(n.Pos()),
							fmt.Sprintf("time.%s: wall-clock read in a deterministic package", sel.Sel.Name)})
					}
					if randName != "" && pkg.Name == randName && globalRandFuncs[sel.Sel.Name] {
						out = append(out, finding{fset.Position(n.Pos()),
							fmt.Sprintf("rand.%s: global math/rand source; use rand.New(rand.NewSource(seed))", sel.Sel.Name)})
					}
				}
			}
			if f, ok := errorfNoWrap(fset, call); ok {
				out = append(out, f)
			}
			return true
		})
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				out = append(out, vetMapRanges(fset, fn, mapFields)...)
				out = append(out, vetUnsortedCollect(fset, fn, mapFields)...)
				out = append(out, vetAliasedCapture(fset, fn)...)
			}
		}
	}
	return out
}

// importNames returns the local names "time" and "math/rand" are imported
// under ("" when not imported; "_"/"." imports are ignored).
func importNames(f *ast.File) (timeName, randName string) {
	for _, imp := range f.Imports {
		path, _ := strconv.Unquote(imp.Path.Value)
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
			if name == "_" || name == "." {
				continue
			}
		}
		switch path {
		case "time":
			if name == "" {
				name = "time"
			}
			timeName = name
		case "math/rand", "math/rand/v2":
			if name == "" {
				name = "rand"
			}
			randName = name
		}
	}
	return
}

// collectMapFields gathers struct field names declared with a map type
// anywhere in the package, so `x.Summary` ranges are recognized.
func collectMapFields(files []*ast.File) map[string]bool {
	fields := map[string]bool{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				if _, isMap := fld.Type.(*ast.MapType); isMap {
					for _, name := range fld.Names {
						fields[name.Name] = true
					}
				}
			}
			return true
		})
	}
	return fields
}

// collectLocalMaps gathers the names a function binds to definite map
// values: map-typed parameters, local var declarations and assignments
// from make/literals.
func collectLocalMaps(fn *ast.FuncDecl) map[string]bool {
	localMaps := map[string]bool{}
	if fn.Type.Params != nil {
		for _, p := range fn.Type.Params.List {
			if _, isMap := p.Type.(*ast.MapType); isMap {
				for _, name := range p.Names {
					localMaps[name.Name] = true
				}
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if isMapExpr(rhs) {
					localMaps[id.Name] = true
				}
			}
		case *ast.ValueSpec:
			if _, isMap := n.Type.(*ast.MapType); isMap {
				for _, id := range n.Names {
					localMaps[id.Name] = true
				}
			}
			for i, v := range n.Values {
				if i < len(n.Names) && isMapExpr(v) {
					localMaps[n.Names[i].Name] = true
				}
			}
		}
		return true
	})
	return localMaps
}

// vetMapRanges flags map-range loops whose body formats or prints.
func vetMapRanges(fset *token.FileSet, fn *ast.FuncDecl, mapFields map[string]bool) []finding {
	localMaps := collectLocalMaps(fn)
	var out []finding
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !rangesOverMap(rng.X, localMaps, mapFields) {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, isSink := outputSink(call); isSink {
				out = append(out, finding{fset.Position(call.Pos()),
					fmt.Sprintf("%s inside a map-range loop: iteration order leaks into output (collect keys, sort, then range the slice)", name)})
			}
			return true
		})
		return true
	})
	return out
}

// vetUnsortedCollect flags map-range loops that append the iteration
// key/value into a collection the function never sorts: the slice inherits
// the map's randomized order, and any later walk over it — rendering,
// encoding, back-map construction — is nondeterministic. This is exactly
// the shape of the Program.String label bug (a pc→labels back-map filled
// by ranging the label map). The canonical collect-sort-range fix stays
// clean: the sort call sanctions the collection by name.
func vetUnsortedCollect(fset *token.FileSet, fn *ast.FuncDecl, mapFields map[string]bool) []finding {
	localMaps := collectLocalMaps(fn)

	// Names passed to any sort/slices call in this function are considered
	// ordered, wherever the call appears.
	sorted := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkg, ok := sel.X.(*ast.Ident); !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		for _, a := range call.Args {
			if name := exprName(a); name != "" {
				sorted[name] = true
			}
		}
		return true
	})

	var out []finding
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !rangesOverMap(rng.X, localMaps, mapFields) {
			return true
		}
		iterVars := map[string]bool{}
		for _, e := range []ast.Expr{rng.Key, rng.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				iterVars[id.Name] = true
			}
		}
		if len(iterVars) == 0 {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) {
					break
				}
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				fun, ok := call.Fun.(*ast.Ident)
				if !ok || fun.Name != "append" || len(call.Args) < 2 {
					continue
				}
				carries := false
				for _, a := range call.Args[1:] {
					if id, ok := a.(*ast.Ident); ok && iterVars[id.Name] {
						carries = true
					}
				}
				if !carries {
					continue
				}
				target := exprName(as.Lhs[i])
				if target == "" || sorted[target] {
					continue
				}
				out = append(out, finding{fset.Position(as.Pos()),
					fmt.Sprintf("map-range key/value appended into %s, never sorted in this function: element order is nondeterministic (collect, sort, then use)", target)})
			}
			return true
		})
		return true
	})
	return out
}

// exprName renders the identifier path an append target or sort argument
// names: x, x.Field, or the base of an index expression (m[k] → m).
func exprName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base, ok := e.X.(*ast.Ident); ok {
			return base.Name + "." + e.Sel.Name
		}
		return e.Sel.Name
	case *ast.IndexExpr:
		return exprName(e.X)
	}
	return ""
}

// errorfNoWrap flags fmt.Errorf calls that format an error-shaped operand
// (an identifier or field whose name says it holds an error) with %v or %s
// while the format wraps nothing: the chain is flattened and downstream
// errors.Is/As matching silently stops working.
func errorfNoWrap(fset *token.FileSet, call *ast.CallExpr) (finding, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return finding{}, false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "fmt" || len(call.Args) < 2 {
		return finding{}, false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return finding{}, false
	}
	format := lit.Value
	if strings.Contains(format, "%w") ||
		(!strings.Contains(format, "%v") && !strings.Contains(format, "%s")) {
		return finding{}, false
	}
	for _, a := range call.Args[1:] {
		if name, ok := errorishName(a); ok {
			return finding{fset.Position(call.Pos()),
				fmt.Sprintf("fmt.Errorf formats %s with %%v/%%s; %%w keeps the chain visible to errors.Is/As", name)}, true
		}
	}
	return finding{}, false
}

// errorishName reports names that conventionally hold errors (err, runErr,
// inst.Err, ...). Name-shaped detection keeps the check stdlib-only: no
// type information is available without golang.org/x/tools.
func errorishName(e ast.Expr) (string, bool) {
	var name string
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return "", false
	}
	lower := strings.ToLower(name)
	if lower == "err" || strings.HasSuffix(lower, "err") || strings.HasSuffix(lower, "error") {
		return name, true
	}
	return "", false
}

// vetAliasedCapture flags slice/map-typed parameters stored bare into a
// composite literal the function returns — directly, or appended to a
// returned variable. A diagnostic or report built that way aliases
// caller-owned storage: the caller reusing its buffer rewrites history.
func vetAliasedCapture(fset *token.FileSet, fn *ast.FuncDecl) []finding {
	if fn.Type.Results == nil || len(fn.Type.Results.List) == 0 {
		return nil
	}
	aliasable := map[string]bool{}
	if fn.Type.Params != nil {
		for _, p := range fn.Type.Params.List {
			if !sliceOrMapType(p.Type) {
				continue
			}
			for _, name := range p.Names {
				aliasable[name.Name] = true
			}
		}
	}
	if len(aliasable) == 0 {
		return nil
	}
	// Returned names: named results plus every identifier a return lists.
	returned := map[string]bool{}
	for _, r := range fn.Type.Results.List {
		for _, name := range r.Names {
			returned[name.Name] = true
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for _, e := range ret.Results {
				if id, ok := e.(*ast.Ident); ok {
					returned[id.Name] = true
				}
			}
		}
		return true
	})

	var out []finding
	capture := func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			kv, ok := n.(*ast.KeyValueExpr)
			if !ok {
				return true
			}
			id, ok := kv.Value.(*ast.Ident)
			if !ok || !aliasable[id.Name] {
				return true
			}
			field := "field"
			if k, ok := kv.Key.(*ast.Ident); ok {
				field = k.Name
			}
			out = append(out, finding{fset.Position(kv.Pos()),
				fmt.Sprintf("%s aliases slice/map parameter %s in a returned value; copy before capturing", field, id.Name)})
			return true
		})
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, e := range n.Results {
				if lit := compositeIn(e); lit != nil {
					capture(lit)
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				lhs, ok := n.Lhs[i].(*ast.Ident)
				if !ok || !returned[lhs.Name] {
					continue
				}
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				if fun, ok := call.Fun.(*ast.Ident); ok && fun.Name == "append" && len(call.Args) > 1 {
					for _, a := range call.Args[1:] {
						if lit := compositeIn(a); lit != nil {
							capture(lit)
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// sliceOrMapType matches the parameter types whose storage a caller owns.
func sliceOrMapType(t ast.Expr) bool {
	switch t := t.(type) {
	case *ast.ArrayType:
		return t.Len == nil // arrays copy; slices alias
	case *ast.MapType:
		return true
	}
	return false
}

// compositeIn unwraps Lit{...} and &Lit{...}.
func compositeIn(e ast.Expr) *ast.CompositeLit {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return e
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return compositeIn(e.X)
		}
	}
	return nil
}

// isMapExpr reports whether an expression definitely yields a map:
// make(map[...]), a map literal, or a conversion to a map type.
func isMapExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
			_, isMap := e.Args[0].(*ast.MapType)
			return isMap
		}
	case *ast.CompositeLit:
		_, isMap := e.Type.(*ast.MapType)
		return isMap
	}
	return false
}

func rangesOverMap(x ast.Expr, localMaps, mapFields map[string]bool) bool {
	switch x := x.(type) {
	case *ast.Ident:
		return localMaps[x.Name]
	case *ast.SelectorExpr:
		return mapFields[x.Sel.Name]
	}
	return isMapExpr(x)
}

// outputSink reports whether a call formats or writes ordered output.
func outputSink(call *ast.CallExpr) (string, bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "fmt" && fmtOutputFuncs[sel.Sel.Name] {
			return "fmt." + sel.Sel.Name, true
		}
		if writerMethods[sel.Sel.Name] {
			return "." + sel.Sel.Name, true
		}
	}
	// A direct format-string argument (e.g. a local printf-style helper):
	// the formatted text still serializes the iteration order.
	if len(call.Args) > 0 {
		if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING && strings.Contains(lit.Value, "%") {
			return "formatted call", true
		}
	}
	return "", false
}
