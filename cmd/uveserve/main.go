// Command uveserve runs the content-addressed simulation service: an
// HTTP/JSON daemon that fingerprints submitted (kernel, variant, size,
// config) jobs by the SHA-256 of their canonical program encoding plus
// canonical machine configuration, serves repeats from a persistent
// on-disk result store, and simulates only what the store has never seen.
// Response bodies are versioned report documents (internal/report) whose
// bytes are a pure function of the job's content, so concurrent clients —
// and clients of a restarted daemon — receive byte-identical reports.
//
// Usage:
//
//	uveserve -addr :8931 -store /var/lib/uveserve
//	uveserve -addr 127.0.0.1:0 -addr-file /tmp/uveserve.addr   # smoke tests
//
// Endpoints (see internal/serve):
//
//	POST /v1/jobs           submit a spec or {"jobs": [...]}; ?wait=1 blocks
//	GET  /v1/jobs/{id}      status; /report raw payload; /stream NDJSON progress
//	POST /v1/jobs/{id}/cancel
//	GET  /v1/stats          store hit/miss, runner memo, rate-limit counters
//	GET  /v1/healthz        ok | draining
//
// SIGTERM/SIGINT drains gracefully: in-flight simulations finish (bounded
// by -drain-timeout), queued and new jobs are rejected with a retriable
// status, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8931", "listen address (port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (readiness signal for scripts)")
	storeDir := flag.String("store", "", "result store directory (required)")
	workers := flag.Int("j", 2, "concurrent simulations")
	queueLen := flag.Int("queue", 64, "submitted-job backlog bound")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job execution bound (0 = none)")
	rate := flag.Float64("rate", 0, "per-client token refill rate, requests/sec (0 with -burst 0 disables limiting)")
	burst := flag.Float64("burst", 0, "per-client token bucket depth")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight jobs before canceling them")
	flag.Parse()

	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "uveserve: -store is required")
		os.Exit(2)
	}
	st, err := store.Open(*storeDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uveserve:", err)
		os.Exit(1)
	}
	srv, err := serve.New(serve.Config{
		Store: st, Workers: *workers, QueueLen: *queueLen,
		JobTimeout: *jobTimeout, Rate: *rate, Burst: *burst,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "uveserve:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uveserve:", err)
		os.Exit(1)
	}
	if *addrFile != "" {
		// Write-then-rename so a watching script never reads a torn file.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "uveserve:", err)
			os.Exit(1)
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			fmt.Fprintln(os.Stderr, "uveserve:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "uveserve: listening on %s (store %s, %d workers)\n",
		ln.Addr(), *storeDir, *workers)

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "uveserve: %v: draining (in-flight jobs finish, new jobs rejected)\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		srv.Drain(ctx)
		// Stop the listener last so in-flight status polls kept working
		// during the drain.
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer shutCancel()
		_ = httpSrv.Shutdown(shutCtx)
		fmt.Fprintln(os.Stderr, "uveserve: drained, exiting")
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "uveserve:", err)
			os.Exit(1)
		}
	}
}
