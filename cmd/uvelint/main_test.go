package main

// Golden-file pin of the -json report: the field names and shapes are a
// stable machine-readable surface (scripts/check.sh pipes them through
// jsonvalid; downstream tooling parses them). Regenerate the golden file
// with `go test ./cmd/uvelint -run TestJSONGolden -update` after an
// intentional schema or model change.

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/kernels"
	"repro/internal/report"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestJSONGolden(t *testing.T) {
	k := kernels.ByID("C") // SAXPY: three streams, pure affine, fully exact
	if k == nil {
		t.Fatal("kernel C not registered")
	}
	const size = 512
	rep, _, err := buildReport(k, kernels.UVE, size, true)
	if err != nil {
		t.Fatal(err)
	}

	doc := report.New("uvelint")
	doc.Lint = &report.Lint{Programs: []report.Program{rep}}
	out, err := doc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	buf := *bytes.NewBuffer(out)

	golden := filepath.Join("testdata", "saxpy_uve_cost.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-json output drifted from %s\n-- got --\n%s\n-- want --\n%s\n(regenerate with -update after an intentional change)",
			golden, buf.Bytes(), want)
	}
}

// TestJSONReportShape guards the invariants the golden file alone cannot:
// every program in the full sweep produces valid JSON with the required
// fields, and clean programs carry a cost estimate when requested.
func TestJSONReportShape(t *testing.T) {
	for _, k := range kernels.All {
		rep, _, err := buildReport(k, kernels.UVE, bench.SizeFor(k, &bench.Options{Scale: 64}), true)
		if err != nil {
			t.Fatalf("%s: %v", k.ID, err)
		}
		if rep.Kernel != k.ID || rep.Variant != "UVE" || rep.Insts <= 0 {
			t.Errorf("%s: malformed report %+v", k.ID, rep)
		}
		if rep.Diags == nil {
			t.Errorf("%s: diags must marshal as [], not null", k.ID)
		}
		if rep.Clean && rep.Cost == nil {
			t.Errorf("%s: clean program missing cost estimate", k.ID)
		}
		if rep.Certificate.Pairs != rep.Certificate.Disjoint+rep.Certificate.Ordered+
			rep.Certificate.Unknown+rep.Certificate.Hazard {
			t.Errorf("%s: certificate counts do not add up: %+v", k.ID, rep.Certificate)
		}
		if rep.Certificate.CollisionFree && !rep.Certificate.Safe {
			t.Errorf("%s: collision-free but not safe: %+v", k.ID, rep.Certificate)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("%s: marshal: %v", k.ID, err)
		}
		if !json.Valid(b) {
			t.Fatalf("%s: invalid JSON", k.ID)
		}
	}
}
