// Command uvelint statically verifies the evaluation kernels: it builds each
// requested kernel/variant pair against a fresh memory hierarchy and runs the
// internal/lint checker over the assembled program — stream lifecycle,
// descriptor footprint vs allocated buffers, register dataflow and CFG
// sanity — without simulating a single cycle.
//
// Usage:
//
//	uvelint -kernel C                 # lint SAXPY, all variants
//	uvelint -kernel C -variant uve    # one variant
//	uvelint -all                      # lint every kernel/variant pair
//	uvelint -all -deps                # also print classified dependence pairs
//	uvelint -all -max-footprint 4096  # cap footprint enumeration
//	uvelint -all -fidelity functional # lint + execute on the fast tier
//	uvelint -kernel C -cost           # static cost model: exact traffic + bounds
//	uvelint -all -cost -json          # machine-readable diagnostics + cost
//	uvelint -kernel L -deps -prove=false  # baseline verdicts without the prover
//
// -fidelity functional additionally interprets every clean program on the
// functional tier and runs the kernel's output check — dynamic verification
// without simulating cycles.
//
// -prove (on by default) feeds each program through the abstract-
// interpretation value-range prover (internal/absint) before dependence
// classification, upgrading scalar-store verdicts the constant-propagation
// pass alone leaves unknown. Every report carries a safety certificate
// summarizing the verdicts; collision-free certificates let the simulator's
// SanitizeAuto mode elide runtime shadow tracking.
//
// -cost runs the internal/cost static model over each clean program and
// prints the per-stream traffic prediction and cycle lower bounds. -json
// replaces the text output with a JSON array holding one object per linted
// program (kernel, variant, size, diagnostics and, with -cost, the full
// estimate); field names are stable for downstream tooling.
//
// Exit status: 0 when every linted program is clean (warnings allowed),
// 1 when any program has lint errors, 2 on usage or build failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliflags"
	"repro/internal/cost"
	"repro/internal/kernels"
	"repro/internal/lint"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/sim"
)

func severityName(s lint.Severity) string {
	if s == lint.Error {
		return "error"
	}
	return "warning"
}

// buildReport assembles, lints and (optionally) cost-analyzes one program
// into the shared versioned schema (internal/report). It is the shared
// core of the text and -json paths; the golden-file test pins its JSON
// rendering.
func buildReport(k *kernels.Kernel, v kernels.Variant, n int, withCost bool) (report.Program, *kernels.Instance, error) {
	h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
	inst := k.Build(h, v, n)
	if inst.Err != nil && len(inst.Diags) == 0 {
		return report.Program{}, inst, fmt.Errorf("build failed: %w", inst.Err)
	}
	rep := report.Program{
		Kernel: k.ID, Name: k.Name, Variant: v.String(), Size: n,
		Insts: inst.Prog.Len(), Clean: !lint.HasErrors(inst.Diags),
		Diags:       []report.Diag{},
		Certificate: lint.Certify(inst.Diags, inst.Deps),
	}
	for _, d := range inst.Diags {
		rep.Diags = append(rep.Diags, report.Diag{
			PC: d.PC, Op: d.Op, Severity: severityName(d.Severity), Message: d.Message,
		})
	}
	if withCost && rep.Clean {
		params := cost.DefaultParams(v.VecBytes())
		params.IntArgs = inst.IntArgs
		est, err := cost.Analyze(inst.Prog, params)
		if err != nil {
			return rep, inst, fmt.Errorf("cost analysis failed: %w", err)
		}
		rep.Cost = est
	}
	return rep, inst, nil
}

func main() {
	kid := flag.String("kernel", "", "kernel ID or name (see uvesim -list)")
	variant := flag.String("variant", "all", "variant: uve, sve, neon or all")
	size := flag.Int("size", 0, "problem size (0 = kernel default)")
	all := flag.Bool("all", false, "lint every kernel")
	verbose := flag.Bool("v", false, "print a line for clean programs too")
	deps := flag.Bool("deps", false, "print every classified stream dependence pair")
	costFlag := flag.Bool("cost", false, "run the static cost model (exact traffic prediction + cycle lower bounds)")
	jsonOut := flag.Bool("json", false, "emit one JSON object per program instead of text")
	maxFootprint := flag.Int64("max-footprint", 0,
		"cap per-stream address enumeration in elements (0 = default 2^21); longer streams degrade to hull-only footprints")
	prove := flag.Bool("prove", true,
		"run the abstract-interpretation value-range prover over scalar stores (upgrades unknown dependence verdicts; -prove=false shows the unproven baseline)")
	fid := cliflags.AddFidelity(flag.CommandLine)
	flag.Parse()
	kernels.MaxFootprintElems = *maxFootprint
	kernels.ProveDeps = *prove

	fidelity, err := fid.Parse()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	variants, err := cliflags.Variants(*variant)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var targets []*kernels.Kernel
	if *all {
		targets = kernels.All
	} else if *kid != "" {
		k := lookup(*kid)
		if k == nil {
			fmt.Fprintf(os.Stderr, "unknown kernel %q (try uvesim -list)\n", *kid)
			os.Exit(2)
		}
		targets = []*kernels.Kernel{k}
	} else {
		fmt.Fprintln(os.Stderr, "usage: uvelint -kernel <ID|name> [-variant uve|sve|neon|all] [-size N], or uvelint -all")
		os.Exit(2)
	}

	status := 0
	var reports []report.Program
	for _, k := range targets {
		n := *size
		if n <= 0 {
			n = k.DefaultSize
		}
		for _, v := range variants {
			name := fmt.Sprintf("%s-%s/%s n=%d", k.ID, k.Name, v, n)
			rep, inst, err := buildReport(k, v, n, *costFlag)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				status = max(status, 2)
				if inst.Err == nil {
					// Assembly succeeded; only the cost analysis failed.
					reports = append(reports, rep)
				}
				continue
			}
			if !*jsonOut {
				for _, d := range inst.Diags {
					fmt.Printf("%s:%s\n", name, d)
				}
				if *deps {
					for _, d := range inst.Deps {
						fmt.Printf("%s: dep: %s\n", name, d)
					}
					c := rep.Certificate
					fmt.Printf("%s: certificate: safe=%v collision-free=%v (%d pairs: %d disjoint, %d ordered, %d unknown, %d hazard)\n",
						name, c.Safe, c.CollisionFree, c.Pairs, c.Disjoint, c.Ordered, c.Unknown, c.Hazard)
				}
			}
			if !rep.Clean {
				status = max(status, 1)
				reports = append(reports, rep)
				continue
			}
			if rep.Cost != nil && !*jsonOut {
				fmt.Printf("%s: cost model:\n", name)
				fmt.Print(rep.Cost.Render())
			}
			reports = append(reports, rep)
			if fidelity == sim.Functional {
				// Dynamic verification rides the fast tier: interpret the
				// program and run the kernel's own output check — static
				// lint plus actual execution, still without a single
				// simulated cycle of the detailed machine.
				o := sim.DefaultOptions(v)
				o.Fidelity = sim.Functional
				if _, err := sim.Run(k, v, n, &o); err != nil {
					fmt.Fprintf(os.Stderr, "%s: functional execution failed: %v\n", name, err)
					status = max(status, 1)
					continue
				}
				if *verbose && !*jsonOut {
					fmt.Printf("%s: ok (%d insts, %d warnings, functional check passed)\n",
						name, inst.Prog.Len(), len(inst.Diags))
				}
				continue
			}
			if *verbose && !*jsonOut {
				fmt.Printf("%s: ok (%d insts, %d warnings)\n", name, inst.Prog.Len(), len(inst.Diags))
			}
		}
	}
	if *jsonOut {
		doc := report.New("uvelint")
		doc.Lint = &report.Lint{Programs: reports}
		b, err := doc.Marshal()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if _, err := os.Stdout.Write(b); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	os.Exit(status)
}

// lookup resolves a kernel by Fig 8 letter or by name.
func lookup(id string) *kernels.Kernel {
	if k := kernels.ByID(id); k != nil {
		return k
	}
	for _, k := range kernels.All {
		if k.Name == id {
			return k
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
