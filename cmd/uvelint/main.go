// Command uvelint statically verifies the evaluation kernels: it builds each
// requested kernel/variant pair against a fresh memory hierarchy and runs the
// internal/lint checker over the assembled program — stream lifecycle,
// descriptor footprint vs allocated buffers, register dataflow and CFG
// sanity — without simulating a single cycle.
//
// Usage:
//
//	uvelint -kernel C                 # lint SAXPY, all variants
//	uvelint -kernel C -variant uve    # one variant
//	uvelint -all                      # lint every kernel/variant pair
//	uvelint -all -deps                # also print classified dependence pairs
//	uvelint -all -max-footprint 4096  # cap footprint enumeration
//	uvelint -all -fidelity functional # lint + execute on the fast tier
//
// -fidelity functional additionally interprets every clean program on the
// functional tier and runs the kernel's output check — dynamic verification
// without simulating cycles.
//
// Exit status: 0 when every linted program is clean (warnings allowed),
// 1 when any program has lint errors, 2 on usage or build failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliflags"
	"repro/internal/kernels"
	"repro/internal/lint"
	"repro/internal/mem"
	"repro/internal/sim"
)

func main() {
	kid := flag.String("kernel", "", "kernel ID or name (see uvesim -list)")
	variant := flag.String("variant", "all", "variant: uve, sve, neon or all")
	size := flag.Int("size", 0, "problem size (0 = kernel default)")
	all := flag.Bool("all", false, "lint every kernel")
	verbose := flag.Bool("v", false, "print a line for clean programs too")
	deps := flag.Bool("deps", false, "print every classified stream dependence pair")
	maxFootprint := flag.Int64("max-footprint", 0,
		"cap per-stream address enumeration in elements (0 = default 2^21); longer streams degrade to hull-only footprints")
	fid := cliflags.AddFidelity(flag.CommandLine)
	flag.Parse()
	kernels.MaxFootprintElems = *maxFootprint

	fidelity, err := fid.Parse()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	variants, err := cliflags.Variants(*variant)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var targets []*kernels.Kernel
	if *all {
		targets = kernels.All
	} else if *kid != "" {
		k := lookup(*kid)
		if k == nil {
			fmt.Fprintf(os.Stderr, "unknown kernel %q (try uvesim -list)\n", *kid)
			os.Exit(2)
		}
		targets = []*kernels.Kernel{k}
	} else {
		fmt.Fprintln(os.Stderr, "usage: uvelint -kernel <ID|name> [-variant uve|sve|neon|all] [-size N], or uvelint -all")
		os.Exit(2)
	}

	status := 0
	for _, k := range targets {
		n := *size
		if n <= 0 {
			n = k.DefaultSize
		}
		for _, v := range variants {
			h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
			inst := k.Build(h, v, n)
			name := fmt.Sprintf("%s-%s/%s n=%d", k.ID, k.Name, v, n)
			if inst.Err != nil && len(inst.Diags) == 0 {
				// Assembly failed before verification could run.
				fmt.Fprintf(os.Stderr, "%s: build failed: %v\n", name, inst.Err)
				status = max(status, 2)
				continue
			}
			for _, d := range inst.Diags {
				fmt.Printf("%s:%s\n", name, d)
			}
			if *deps {
				for _, d := range inst.Deps {
					fmt.Printf("%s: dep: %s\n", name, d)
				}
			}
			if lint.HasErrors(inst.Diags) {
				status = max(status, 1)
				continue
			}
			if fidelity == sim.Functional {
				// Dynamic verification rides the fast tier: interpret the
				// program and run the kernel's own output check — static
				// lint plus actual execution, still without a single
				// simulated cycle of the detailed machine.
				o := sim.DefaultOptions(v)
				o.Fidelity = sim.Functional
				if _, err := sim.Run(k, v, n, &o); err != nil {
					fmt.Fprintf(os.Stderr, "%s: functional execution failed: %v\n", name, err)
					status = max(status, 1)
					continue
				}
				if *verbose {
					fmt.Printf("%s: ok (%d insts, %d warnings, functional check passed)\n",
						name, inst.Prog.Len(), len(inst.Diags))
				}
				continue
			}
			if *verbose {
				fmt.Printf("%s: ok (%d insts, %d warnings)\n", name, inst.Prog.Len(), len(inst.Diags))
			}
		}
	}
	os.Exit(status)
}

// lookup resolves a kernel by Fig 8 letter or by name.
func lookup(id string) *kernels.Kernel {
	if k := kernels.ByID(id); k != nil {
		return k
	}
	for _, k := range kernels.All {
		if k.Name == id {
			return k
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
