# Development targets. `make check` is the PR gate: it checks formatting,
# vets, builds, statically verifies every kernel program (uvelint), runs the
# full test suite under the race detector (which exercises the parallel
# experiment runner), and smoke-runs the Fig 8 benchmark once.

GO ?= go

.PHONY: check fmt vet lint build test race fuzz-smoke bench-smoke bench experiments

check: fmt vet build lint race fuzz-smoke bench-smoke

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on: $$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Static stream/program verification of all 19 kernels × 3 ISA variants.
lint:
	$(GO) run ./cmd/uvelint -all

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/bench ./internal/sim
	$(GO) test -race ./...

# Short native-fuzzing smoke over the descriptor iterator and the symbolic
# footprint abstraction (one -fuzz target per invocation).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzIterator$$' -fuzztime 5s ./internal/descriptor
	$(GO) test -run '^$$' -fuzz '^FuzzFootprint$$' -fuzztime 5s ./internal/descriptor

# One Fig 8 regeneration through the benchmark harness — cheap proof that
# the full kernel × machine matrix still assembles, runs and validates.
bench-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkFig8$$' -benchtime 1x .

# Full custom-metric benchmark sweep (§VI figures as benchmark units).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Paper-scale regeneration of every figure and table.
experiments:
	$(GO) run ./cmd/uvebench -exp all
