# Development targets. `make check` is the PR gate: it checks formatting,
# vets, builds, statically verifies every kernel program (uvelint), runs the
# full test suite under the race detector (which exercises the parallel
# experiment runner), and smoke-runs the Fig 8 benchmark once.

GO ?= go

.PHONY: check fmt vet lint build test race bench-smoke bench experiments

check: fmt vet build lint race bench-smoke

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on: $$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Static stream/program verification of all 19 kernels × 3 ISA variants.
lint:
	$(GO) run ./cmd/uvelint -all

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One Fig 8 regeneration through the benchmark harness — cheap proof that
# the full kernel × machine matrix still assembles, runs and validates.
bench-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkFig8$$' -benchtime 1x .

# Full custom-metric benchmark sweep (§VI figures as benchmark units).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Paper-scale regeneration of every figure and table.
experiments:
	$(GO) run ./cmd/uvebench -exp all
