# Development targets. `make check` is the PR gate: it checks formatting,
# vets, builds, statically verifies every kernel program (uvelint), runs the
# full test suite under the race detector (which exercises the parallel
# experiment runner), smoke-runs the Fig 8 benchmark once, and checks the
# execution-tier, trace, fault-campaign and watchdog smokes, and gates
# wall-clock against the committed BENCH_simwall.json baseline.

GO ?= go

.PHONY: check fmt vet lint build test race fuzz-smoke bench-smoke tier-smoke trace-smoke fault-smoke watchdog-smoke wire-smoke model-smoke prove-smoke serve-smoke perf-smoke perf-baseline bench experiments

check: fmt vet build lint race fuzz-smoke bench-smoke tier-smoke trace-smoke fault-smoke watchdog-smoke wire-smoke model-smoke prove-smoke serve-smoke perf-smoke

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on: $$out"; exit 1; fi

# go vet plus the repo's own determinism vet (cmd/uvevet): no wall-clock
# reads, no global math/rand draws, no map iteration order leaking into
# rendered reports in the simulation packages.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/uvevet

# Static stream/program verification of all 19 kernels × 3 ISA variants.
lint:
	$(GO) run ./cmd/uvelint -all

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/bench ./internal/sim
	$(GO) test -race ./...

# Short native-fuzzing smoke over the descriptor iterator and the symbolic
# footprint abstraction (one -fuzz target per invocation).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzIterator$$' -fuzztime 5s ./internal/descriptor
	$(GO) test -run '^$$' -fuzz '^FuzzFootprint$$' -fuzztime 5s ./internal/descriptor
	$(GO) test -run '^$$' -fuzz '^FuzzClosedFormWalk$$' -fuzztime 5s ./internal/cost
	$(GO) test -run '^$$' -fuzz '^FuzzAbsintSoundness$$' -fuzztime 5s ./internal/absint
	$(GO) test -run '^$$' -fuzz '^FuzzWireDecode$$' -fuzztime 5s ./internal/wire
	$(GO) test -run '^$$' -fuzz '^FuzzWireRoundTrip$$' -fuzztime 5s ./internal/wire

# One Fig 8 regeneration through the benchmark harness — cheap proof that
# the full kernel × machine matrix still assembles, runs and validates.
bench-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkFig8$$' -benchtime 1x .

# Execution-tier smoke: the functional/cycle differential oracle and the
# event-skip bit-equivalence suite race-detected (the functional sweep
# fans out over the worker pool), a short differential fuzz pass, and one
# race-detected end-to-end functional sweep through the uvebench CLI.
tier-smoke:
	$(GO) test -race -run 'TestFunctionalDifferential|TestEventSkipEquivalence' ./internal/sim
	$(GO) test -run '^$$' -fuzz '^FuzzTierDifferential$$' -fuzztime 5s ./internal/sim
	$(GO) run -race ./cmd/uvebench -fidelity functional -scale 64 > /dev/null

# Wall-clock trajectory gate: re-measures the BenchmarkSimWall cells and
# fails on >2x regression vs the committed BENCH_simwall.json. Absolute
# numbers are host-dependent (the baseline names its host) and shared CI
# machines are noisy, hence the deliberately loose 2x threshold; after an
# intentional perf change, regenerate with `make perf-baseline`.
perf-smoke:
	./scripts/perfsmoke.sh

# Regenerate BENCH_simwall.json on this host, including the timed
# detailed-vs-functional uvebench comparisons.
perf-baseline:
	./scripts/perfsmoke.sh -update

# Trace smoke: a traced saxpy run must emit a valid Chrome trace file, the
# tracing machinery (compiled in but disabled) must leave uvesim's stdout
# byte-identical to the traced run's, and uvebench's figure output must be
# byte-identical between sequential and parallel execution.
trace-smoke:
	@dir=$$(mktemp -d); trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/uvesim -kernel C -size 512 > "$$dir/plain.txt" && \
	$(GO) run ./cmd/uvesim -kernel C -size 512 -trace "$$dir/saxpy.json" > "$$dir/traced.txt" 2> /dev/null && \
	$(GO) run ./scripts/jsonvalid "$$dir/saxpy.json" && \
	cmp "$$dir/plain.txt" "$$dir/traced.txt" && \
	$(GO) run ./cmd/uvebench -exp fig8 -scale 256 -j 1 > "$$dir/fig8-seq.txt" && \
	$(GO) run ./cmd/uvebench -exp fig8 -scale 256 > "$$dir/fig8-par.txt" && \
	cmp "$$dir/fig8-seq.txt" "$$dir/fig8-par.txt"

# Fault smoke: seeded injection is deterministic — the same seed must give
# byte-identical output for one faulted run and for the full campaign table
# — and the campaign paths run race-detected.
fault-smoke:
	@dir=$$(mktemp -d); trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/uvesim -kernel C -size 512 -faults seed=7 > "$$dir/fault1.txt" && \
	$(GO) run ./cmd/uvesim -kernel C -size 512 -faults seed=7 > "$$dir/fault2.txt" && \
	cmp "$$dir/fault1.txt" "$$dir/fault2.txt" && \
	$(GO) run ./cmd/uvebench -exp faults -scale 512 > "$$dir/campaign1.txt" && \
	$(GO) run ./cmd/uvebench -exp faults -scale 512 > "$$dir/campaign2.txt" && \
	cmp "$$dir/campaign1.txt" "$$dir/campaign2.txt"
	$(GO) test -race -run Fault ./internal/fault ./internal/sim ./internal/bench

# Watchdog smoke: an intentionally starved run (every line fetch NACKed
# into long back-offs, tight no-commit bound) must exit non-zero with the
# structured diagnostic — never hang.
watchdog-smoke:
	@dir=$$(mktemp -d); trap 'rm -rf "$$dir"' EXIT; \
	if $(GO) run ./cmd/uvesim -kernel C -size 65536 \
	    -faults seed=7,nack=900,nack-backoff=200 -watchdog 150 > "$$dir/wd.txt" 2>&1; then \
	    echo "watchdog smoke: starved run exited zero"; exit 1; \
	fi; \
	grep -q watchdog "$$dir/wd.txt" && grep -q "stream table" "$$dir/wd.txt"

# Wire-format smoke: the canonical encoder must be bit-reproducible (two
# corpus encodes diff clean), every blob must disassemble, -verify must
# certify canonicality and lint-verdict identity for the whole corpus, and
# the README walkthrough (encode saxpy -> disassemble -> statically verify)
# must work end to end.
wire-smoke:
	@dir=$$(mktemp -d); trap 'rm -rf "$$dir"' EXIT; \
	$(GO) build -o "$$dir/uveasm" ./cmd/uveasm && \
	"$$dir/uveasm" -o "$$dir/wire-a" > /dev/null && \
	"$$dir/uveasm" -o "$$dir/wire-b" > /dev/null && \
	diff -r "$$dir/wire-a" "$$dir/wire-b" && \
	"$$dir/uveasm" -d "$$dir/wire-a"/*.uve > /dev/null && \
	"$$dir/uveasm" -verify "$$dir/wire-a"/*.uve > /dev/null && \
	"$$dir/uveasm" -kernel C -variant uve -o "$$dir/saxpy.uve" > /dev/null && \
	"$$dir/uveasm" -d "$$dir/saxpy.uve" | grep -q saxpy && \
	"$$dir/uveasm" -lint "$$dir/saxpy.uve" | grep -q "certificate: safe=true"

# Cost-model validation sweep: the static model's exact traffic predictions
# must match the simulator's committed counters and every cycle lower bound
# must hold across the full kernel × variant matrix (the degeneracy gate
# fails the run on any violation); the -json lint+cost report must be valid
# machine-readable JSON.
model-smoke:
	$(GO) run ./cmd/uvebench -exp model -scale 256 > /dev/null
	$(GO) run ./cmd/uvelint -all -cost -json | $(GO) run ./scripts/jsonvalid

# Prove smoke: the abstract-interpretation prover must be deterministic
# (two -prove sweeps render byte-identically, certificates included) and
# effective (HACCmk's scalar-store pairs certify collision-free only with
# the prover on; a certified kernel elides the sanitizer under
# -sanitize=auto). The certified-elision wall clock is recorded by the
# sanitize-on/sanitize-auto BenchmarkSimWall cells that perf-smoke gates
# against BENCH_simwall.json.
prove-smoke:
	@dir=$$(mktemp -d); trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/uvelint -all -deps > "$$dir/prove1.txt" && \
	$(GO) run ./cmd/uvelint -all -deps > "$$dir/prove2.txt" && \
	cmp "$$dir/prove1.txt" "$$dir/prove2.txt" && \
	grep -q "proven outside the stream footprint by value-range analysis" "$$dir/prove1.txt" && \
	$(GO) run ./cmd/uvelint -kernel L -variant uve -deps -prove=false | grep -q "collision-free=false" && \
	$(GO) run ./cmd/uvesim -kernel L -size 256 -fidelity functional -sanitize=auto | grep -q "sanitizer:         elided"

# Serve smoke: the uveserve daemon end to end over curl — two concurrent
# clients receive byte-identical reports for the same kernel × variant ×
# size matrix, SIGTERM drains cleanly with a job in flight, and a restart
# over the same store directory serves everything from disk (hit rate > 0).
serve-smoke:
	./scripts/servesmoke.sh

# Full custom-metric benchmark sweep (§VI figures as benchmark units).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Paper-scale regeneration of every figure and table.
experiments:
	$(GO) run ./cmd/uvebench -exp all
