package uve

import (
	"repro/internal/isa"
)

// Assembler surface: registers, the scalar base ISA, the baseline SIMD
// subset, and the UVE streaming instructions (paper §III-B). These re-export
// the internal ISA so downstream users can hand-write kernels against the
// public API, as the paper's authors did in extended assembler.

// Reg names one architectural register.
type Reg = isa.Reg

// Inst is one decoded instruction (a single µOp).
type Inst = isa.Inst

// None is the absent-operand register.
var None = isa.None

// Register constructors: integer (x), floating point (f), vector/stream (u)
// and predicate (p) files.
func X(n int) Reg { return isa.X(n) }
func F(n int) Reg { return isa.F(n) }
func V(n int) Reg { return isa.V(n) }
func P(n int) Reg { return isa.P(n) }

// --- scalar base ISA ---

func Nop() Inst                       { return isa.Nop() }
func Halt() Inst                      { return isa.Halt() }
func Li(rd Reg, imm int64) Inst       { return isa.Li(rd, imm) }
func Mv(rd, rs Reg) Inst              { return isa.Mv(rd, rs) }
func Add(rd, a, b Reg) Inst           { return isa.Add(rd, a, b) }
func Sub(rd, a, b Reg) Inst           { return isa.Sub(rd, a, b) }
func Mul(rd, a, b Reg) Inst           { return isa.Mul(rd, a, b) }
func AddI(rd, rs Reg, imm int64) Inst { return isa.AddI(rd, rs, imm) }
func SllI(rd, rs Reg, imm int64) Inst { return isa.SllI(rd, rs, imm) }
func Beq(a, b Reg, label string) Inst { return isa.Beq(a, b, label) }
func Bne(a, b Reg, label string) Inst { return isa.Bne(a, b, label) }
func Blt(a, b Reg, label string) Inst { return isa.Blt(a, b, label) }
func Bge(a, b Reg, label string) Inst { return isa.Bge(a, b, label) }
func Jump(label string) Inst          { return isa.J(label) }

// Scalar memory and floating point.
func Load(w ElemWidth, rd, base Reg, off int64) Inst { return isa.Load(w, rd, base, off) }
func Store(w ElemWidth, base Reg, off int64, data Reg) Inst {
	return isa.Store(w, base, off, data)
}
func FLoad(w ElemWidth, rd, base Reg, off int64) Inst { return isa.FLoad(w, rd, base, off) }
func FStore(w ElemWidth, base Reg, off int64, data Reg) Inst {
	return isa.FStore(w, base, off, data)
}
func FLi(w ElemWidth, rd Reg, v float64) Inst { return isa.FLi(w, rd, v) }
func FAdd(w ElemWidth, rd, a, b Reg) Inst     { return isa.FAdd(w, rd, a, b) }
func FSub(w ElemWidth, rd, a, b Reg) Inst     { return isa.FSub(w, rd, a, b) }
func FMul(w ElemWidth, rd, a, b Reg) Inst     { return isa.FMul(w, rd, a, b) }
func FDiv(w ElemWidth, rd, a, b Reg) Inst     { return isa.FDiv(w, rd, a, b) }

// --- vector subset (shared by the baselines and UVE compute) ---

func VLoad(w ElemWidth, vd, base, idx Reg, imm int64, pred Reg) Inst {
	return isa.VLoad(w, vd, base, idx, imm, pred)
}
func VStore(w ElemWidth, base, idx Reg, imm int64, data, pred Reg) Inst {
	return isa.VStore(w, base, idx, imm, data, pred)
}
func VDup(w ElemWidth, vd, fs Reg) Inst          { return isa.VDup(w, vd, fs) }
func VDupX(w ElemWidth, vd, xs Reg) Inst         { return isa.VDupX(w, vd, xs) }
func VBcast(w ElemWidth, vd, vs Reg) Inst        { return isa.VBcast(w, vd, vs) }
func VMove(w ElemWidth, vd, vs Reg) Inst         { return isa.VMove(w, vd, vs) }
func VFAdd(w ElemWidth, vd, a, b, pred Reg) Inst { return isa.VFAdd(w, vd, a, b, pred) }
func VFSub(w ElemWidth, vd, a, b, pred Reg) Inst { return isa.VFSub(w, vd, a, b, pred) }
func VFMul(w ElemWidth, vd, a, b, pred Reg) Inst { return isa.VFMul(w, vd, a, b, pred) }
func VFDiv(w ElemWidth, vd, a, b, pred Reg) Inst { return isa.VFDiv(w, vd, a, b, pred) }
func VFMax(w ElemWidth, vd, a, b, pred Reg) Inst { return isa.VFMax(w, vd, a, b, pred) }
func VFMin(w ElemWidth, vd, a, b, pred Reg) Inst { return isa.VFMin(w, vd, a, b, pred) }
func VFMla(w ElemWidth, vd, a, b, pred Reg) Inst { return isa.VFMla(w, vd, a, b, pred) }
func VFMulAdd(w ElemWidth, vd, a, b, c Reg) Inst { return isa.VFMulAdd(w, vd, a, b, c) }
func VFAddV(w ElemWidth, vd, vs Reg) Inst        { return isa.VFAddV(w, vd, vs) }
func VFMaxV(w ElemWidth, vd, vs Reg) Inst        { return isa.VFMaxV(w, vd, vs) }
func VFMinV(w ElemWidth, vd, vs Reg) Inst        { return isa.VFMinV(w, vd, vs) }
func VFAddVF(w ElemWidth, fd, vs Reg) Inst       { return isa.VFAddVF(w, fd, vs) }
func VFMaxVF(w ElemWidth, fd, vs Reg) Inst       { return isa.VFMaxVF(w, fd, vs) }

// Predication and vector-length-agnostic loop control (SVE-style).
func Whilelt(w ElemWidth, pd, idx, n Reg) Inst { return isa.Whilelt(w, pd, idx, n) }
func BFirst(p Reg, label string) Inst          { return isa.BFirst(p, label) }
func IncVL(w ElemWidth, rd, rs Reg) Inst       { return isa.IncVL(w, rd, rs) }
func GetVL(w ElemWidth, rd Reg) Inst           { return isa.GetVL(w, rd) }

// --- UVE streaming (paper §III-B) ---

// ConfigStream expands a descriptor into its configuration µOp sequence for
// stream register u (one instruction per dimension and modifier).
func ConfigStream(u int, d *Descriptor) []Inst { return isa.SCfgParts(u, d) }

// SetVL requests an effective vector length of rs lanes for width w; the
// granted count lands in rd (serializing, paper §III-B "Advanced control").
func SetVL(w ElemWidth, rd, rs Reg) Inst { return isa.SetVL(w, rd, rs) }

// Stream control.
func StreamSuspend(u int) Inst { return isa.SSuspend(u) }
func StreamResume(u int) Inst  { return isa.SResume(u) }
func StreamStop(u int) Inst    { return isa.SStop(u) }

// Stream-conditional branches.
func BranchStreamNotEnd(u int, label string) Inst { return isa.SBNotEnd(u, label) }
func BranchStreamEnd(u int, label string) Inst    { return isa.SBEnd(u, label) }
func BranchDimNotEnd(u, dim int, label string) Inst {
	return isa.SBDimNotEnd(u, dim, label)
}
func BranchDimEnd(u, dim int, label string) Inst { return isa.SBDimEnd(u, dim, label) }
