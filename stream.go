package uve

import (
	"repro/internal/descriptor"
)

// Stream descriptor surface (paper §II): hierarchical {Offset, Size, Stride}
// dimensions with static and indirect modifiers.

// Descriptor is a fully configured stream pattern.
type Descriptor = descriptor.Descriptor

// StreamBuilder assembles descriptors dimension by dimension, mirroring the
// ss.ld.sta / ss.app / ss.end configuration instruction sequence.
type StreamBuilder = descriptor.Builder

// Stream element access sequence helpers.
type (
	// Elem is one generated stream element with end-of-dimension flags.
	Elem = descriptor.Elem
	// OriginSource supplies values for indirect modifiers when iterating a
	// descriptor standalone.
	OriginSource = descriptor.OriginSource
)

// Target selects which parameter of a dimension a modifier rewrites.
type Target = descriptor.Target

// Behavior is a modifier's operation (add/sub for static modifiers,
// set-add/set-sub/set-value for indirect ones).
type Behavior = descriptor.Behavior

// Modifier targets and behaviors (paper §II-B2, §II-B3).
const (
	TargetOffset = descriptor.TargetOffset
	TargetSize   = descriptor.TargetSize
	TargetStride = descriptor.TargetStride

	ModAdd      = descriptor.Add
	ModSub      = descriptor.Sub
	ModSetAdd   = descriptor.SetAdd
	ModSetSub   = descriptor.SetSub
	ModSetValue = descriptor.SetValue
)

// NewLoadStream starts an input-stream descriptor over elements of width w
// based at byte address base.
func NewLoadStream(base uint64, w ElemWidth) *StreamBuilder {
	return descriptor.New(base, w, descriptor.Load)
}

// NewStoreStream starts an output-stream descriptor.
func NewStoreStream(base uint64, w ElemWidth) *StreamBuilder {
	return descriptor.New(base, w, descriptor.Store)
}

// Addresses materializes the full byte-address sequence of a descriptor —
// useful for inspecting patterns without running a machine. src may be nil
// for purely affine patterns.
func Addresses(d *Descriptor, src OriginSource) []uint64 {
	return descriptor.Addresses(d, src)
}

// Elements materializes the element sequence with end-of-dimension flags.
func Elements(d *Descriptor, src OriginSource) []Elem {
	return descriptor.Sequence(d, src)
}

// SliceOrigin adapts in-memory value slices (keyed by origin stream number)
// into an OriginSource for standalone descriptor iteration.
func SliceOrigin(values map[int][]uint64) OriginSource {
	return descriptor.NewSliceOrigin(values)
}
