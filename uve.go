// Package uve is a library-level reproduction of "Unlimited Vector
// Extension with Data Streaming Support" (Domingos, Neves, Roma, Tomás —
// ISCA 2021): a vector-length-agnostic SIMD ISA whose memory accesses are
// described once, at the loop preamble, as hierarchical stream descriptors
// and then executed autonomously by a Streaming Engine embedded in an
// out-of-order core.
//
// The package exposes three layers:
//
//   - Stream descriptors (NewLoadStream/NewStoreStream): the §II pattern
//     model — n-dimensional affine sequences with static and indirect
//     modifiers — usable standalone for address-sequence generation.
//   - Programs (NewProgram plus the assembler constructors in asm.go): the
//     UVE instruction set, the SVE-like and NEON-like baseline subsets, and
//     the scalar base ISA.
//   - Machines (NewMachine): cycle-level models of the paper's Table I
//     out-of-order core, two-level MOESI cache hierarchy with baseline
//     prefetchers, DDR3-class DRAM, and the Streaming Engine.
//
// See examples/ for runnable end-to-end programs and cmd/uvebench for the
// harness regenerating the paper's evaluation figures.
package uve

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/cost"
	"repro/internal/cpu"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/funcsim"
	"repro/internal/lint"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Element widths (bytes) of stream and vector elements.
const (
	W1 = arch.W1
	W2 = arch.W2
	W4 = arch.W4
	W8 = arch.W8
)

// Memory levels a stream can be configured to operate over (so.cfg.memx).
const (
	LevelL1  = arch.LevelL1
	LevelL2  = arch.LevelL2
	LevelMem = arch.LevelMem
)

// ElemWidth is the element width in bytes.
type ElemWidth = arch.ElemWidth

// CacheLevel selects the memory level a stream operates over.
type CacheLevel = arch.CacheLevel

// Program is a resolved instruction sequence.
type Program = program.Program

// ProgramBuilder assembles programs with labels (see NewProgram).
type ProgramBuilder = program.Builder

// NewProgram starts an assembler-style program builder.
func NewProgram(name string) *ProgramBuilder { return program.NewBuilder(name) }

// Config selects the machine configuration. The zero value is not valid;
// start from DefaultConfig (the paper's Table I machine) or NEONConfig.
type Config struct {
	Core   cpu.Config
	Engine engine.Config
	Memory mem.HierarchyConfig
	// Streaming enables the Streaming Engine (the UVE machine). Baseline
	// machines leave it false and rely on the hardware prefetchers.
	Streaming bool
}

// DefaultConfig is the paper's Table I configuration with streaming enabled:
// a Cortex-A76-class out-of-order core with 512-bit vectors and the
// Streaming Engine.
func DefaultConfig() Config {
	return Config{
		Core:      cpu.DefaultConfig(),
		Engine:    engine.DefaultConfig(),
		Memory:    mem.DefaultHierarchyConfig(),
		Streaming: true,
	}
}

// SVEConfig is the baseline machine the paper compares against: the same
// core and memory system (including the stride and AMPM prefetchers), 512-bit
// vectors, no Streaming Engine.
func SVEConfig() Config {
	c := DefaultConfig()
	c.Streaming = false
	return c
}

// NEONConfig is the fixed-width 128-bit baseline.
func NEONConfig() Config {
	c := SVEConfig()
	c.Core.VecBytes = 16
	return c
}

// TraceCollector retains a window of instrumentation events plus the full
// per-cycle stall attribution; pass it to WithTrace.
type TraceCollector = trace.Collector

// NewTraceCollector builds a collector keeping up to ringSize recent events
// with the stall attribution folded over intervals of the given cycle count
// (<= 0 folds the whole run into one interval).
func NewTraceCollector(ringSize int, interval int64) *TraceCollector {
	return trace.NewCollector(ringSize, interval)
}

// FaultPlan configures the deterministic fault injectors (see WithFaults).
type FaultPlan = fault.Plan

// FaultStats counts the injections that actually fired during a run.
type FaultStats = fault.Stats

// DefaultFaultPlan is a moderate all-channel campaign for the given seed.
func DefaultFaultPlan(seed uint64) FaultPlan { return fault.DefaultPlan(seed) }

// ParseFaultPlan parses a comma-separated key=value campaign spec
// (e.g. "seed=7,nack=100,pf=50"); the empty spec is DefaultFaultPlan(1).
func ParseFaultPlan(spec string) (FaultPlan, error) { return fault.ParsePlan(spec) }

// Collision is one runtime overlap observed by the stream sanitizer.
type Collision = engine.Collision

// WatchdogError is the structured diagnostic a run fails with when it
// stops making progress (see WithWatchdog and FaultPlan-induced livelock
// conversion): it carries the cycle, the ROB head, and the engine's
// stream-table dump.
type WatchdogError = cpu.WatchdogError

// Result carries the measurements of one run.
type Result struct {
	// Cycles to commit the program's halt (the paper's performance metric).
	Cycles int64
	// Committed architectural instructions.
	Committed uint64
	// Core, Engine, DRAM, L1 and L2 statistics.
	Core   cpu.Stats
	Engine engine.Stats
	DRAM   mem.DRAMStats
	L1     mem.CacheStats
	L2     mem.CacheStats
	// BusUtil is (read+write bandwidth)/peak DRAM bandwidth over the run.
	BusUtil float64
	// Collisions holds the stream sanitizer's observations (WithSanitize).
	Collisions []Collision
	// Faults counts the injections that fired (WithFaults).
	Faults FaultStats
	// SanitizerElided reports that SanitizeAuto skipped shadow tracking on
	// the strength of the program's static safety certificate.
	SanitizerElided bool
}

// IPC returns committed instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}

// Machine is one simulated system: memory + caches + optional Streaming
// Engine. Allocate data with Alloc/Float32s/Uint64s, then Run programs.
type Machine struct {
	cfg  Config
	opts machineOptions
	hier *mem.Hierarchy
}

// machineOptions collects the cross-cutting run settings the functional
// options configure; Config stays a plain hardware description.
type machineOptions struct {
	sanitize SanitizeMode
	trace    *TraceCollector
	faults   *FaultPlan
	watchdog int64
	maxCyc   int64
	fidelity Fidelity
}

// Option configures a Machine beyond its hardware Config.
type Option func(*machineOptions)

// SanitizeMode selects how a run decides whether the stream sanitizer
// (shadow address tracking) is enabled; see WithSanitize.
type SanitizeMode = sim.SanitizeMode

const (
	// SanitizeOff never tracks (the default).
	SanitizeOff = sim.SanitizeOff
	// SanitizeOn always tracks on streaming machines.
	SanitizeOn = sim.SanitizeOn
	// SanitizeAuto statically verifies the program first and elides
	// tracking when the safety certificate proves every simultaneously-live
	// access pair disjoint — a certified run can only ever observe zero
	// collisions, so skipping the tracker is observationally identical and
	// much faster. Uncertified programs and fault-injected runs track
	// exactly like SanitizeOn. Result.SanitizerElided reports the outcome.
	SanitizeAuto = sim.SanitizeAuto
)

// WithSanitize selects the streaming engine's shadow address tracker mode:
// under SanitizeOn every byte live streams touch is recorded and runtime
// collisions are reported in Result.Collisions (byte-granular — meant for
// verification runs at test sizes, not timing experiments); SanitizeAuto
// elides the tracker when static analysis proves it could observe nothing.
func WithSanitize(m SanitizeMode) Option { return func(o *machineOptions) { o.sanitize = m } }

// WithTrace streams typed instrumentation events from the core and the
// streaming engine into c. Timing is unaffected: the same cycles are
// simulated with or without a recorder.
func WithTrace(c *TraceCollector) Option { return func(o *machineOptions) { o.trace = c } }

// WithFaults runs every program under the seeded deterministic fault
// injectors: NACKed line fetches with bounded retry/backoff, page faults
// raised mid-stream (squash + replay of speculative FIFO state), transient
// DRAM latency spikes, and forced stream pauses at dimension boundaries.
// Injection perturbs timing only — architectural results are unchanged —
// and the same plan reproduces the same run, cycle for cycle. A fresh
// injector is built per Run call.
func WithFaults(p FaultPlan) Option {
	return func(o *machineOptions) { o.faults = &p }
}

// WithWatchdog overrides the forward-progress bound: a run that commits
// nothing for n cycles fails with a *WatchdogError instead of running
// forever. WithFaults campaigns combine it with WithMaxCycles to convert
// injection-induced livelock into a structured diagnostic.
func WithWatchdog(n int64) Option { return func(o *machineOptions) { o.watchdog = n } }

// WithMaxCycles aborts any run exceeding n cycles with a *WatchdogError —
// a hard, wall-clock-free bound for adversarial campaigns.
func WithMaxCycles(n int64) Option { return func(o *machineOptions) { o.maxCyc = n } }

// Fidelity selects the execution tier a Machine runs programs on.
type Fidelity = sim.Fidelity

const (
	// Cycle is the detailed tier: the out-of-order core, streaming engine
	// and memory hierarchy simulated cycle by cycle. The default.
	Cycle = sim.Cycle
	// Functional is the fast tier: program-order interpretation with eager
	// stream iteration. Produces final memory, committed counts and
	// sanitizer collisions, but Result.Cycles and every timing statistic
	// stay zero. Incompatible with WithTrace and WithFaults.
	Functional = sim.Functional
)

// WithFidelity selects the execution tier (default Cycle). The functional
// tier answers "what did the program compute" one to two orders of
// magnitude faster than the detailed machine; use it for correctness
// loops, sanitizer sweeps and test baselines, never for timing.
func WithFidelity(f Fidelity) Option { return func(o *machineOptions) { o.fidelity = f } }

// NewMachine builds a machine.
func NewMachine(cfg Config, opts ...Option) *Machine {
	cfg.Engine.VecBytes = cfg.Core.VecBytes
	m := &Machine{cfg: cfg, hier: mem.NewHierarchy(cfg.Memory)}
	for _, o := range opts {
		o(&m.opts)
	}
	if m.opts.watchdog > 0 {
		m.cfg.Core.Watchdog = m.opts.watchdog
	}
	if m.opts.maxCyc > 0 {
		m.cfg.Core.MaxCycles = m.opts.maxCyc
	}
	return m
}

// VecBytes returns the machine's vector register width in bytes.
func (m *Machine) VecBytes() int { return m.cfg.Core.VecBytes }

// Lanes returns the vector lane count for elements of width w.
func (m *Machine) Lanes(w ElemWidth) int { return arch.LanesFor(m.cfg.Core.VecBytes, w) }

// Alloc reserves size bytes of simulated memory, cache-line aligned.
func (m *Machine) Alloc(size int) uint64 { return m.hier.Mem.Alloc(size, arch.LineSize) }

// Float32s allocates a float32 array in simulated memory.
func (m *Machine) Float32s(n int) *F32Array {
	return &F32Array{m: m.hier.Mem, Base: m.Alloc(4 * n), N: n}
}

// Uint64s allocates a uint64 array in simulated memory (index vectors).
func (m *Machine) Uint64s(n int) *U64Array {
	return &U64Array{m: m.hier.Mem, Base: m.Alloc(8 * n), N: n}
}

// CanceledError is the typed error RunContext fails with when its context
// is canceled or its deadline expires. It wraps the context's own error
// (errors.Is sees context.Canceled / context.DeadlineExceeded through it)
// and records how far the run had progressed: Cycle on the detailed tier,
// Insts on the functional tier.
type CanceledError = sim.CanceledError

// Run executes a program to completion and returns its measurements.
// args preset architectural registers before the run (kernel arguments).
// Run is RunContext with a background (never-canceled) context.
func (m *Machine) Run(p *Program, args ...Arg) (*Result, error) {
	return m.RunContext(context.Background(), p, args...)
}

// RunContext is Run with cancellation and deadline support: the context
// is polled at cycle-batch granularity on the detailed tier (and at
// instruction-batch granularity on the functional tier), so a canceled
// context stops a multi-million-cycle simulation promptly. The run then
// fails with a *CanceledError wrapping ctx.Err(). The machine's simulated
// memory may have been partially written by the aborted run; the machine
// itself remains usable.
func (m *Machine) RunContext(ctx context.Context, p *Program, args ...Arg) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, &CanceledError{Err: err}
	}
	if m.opts.fidelity == Functional {
		return m.runFunctional(ctx, p, args)
	}
	var inj *fault.Injector
	if m.opts.faults != nil && m.opts.faults.Enabled() {
		// A fresh injector per run: the campaign replays identically on
		// every Run call with the same plan.
		inj = fault.NewInjector(*m.opts.faults)
		m.hier.TLB.Inject = inj.PageFault
		m.hier.DRAM.Inject = inj.DRAMDelay
		defer func() {
			m.hier.TLB.Inject = nil
			m.hier.DRAM.Inject = nil
		}()
	}
	sanitize, elided := m.resolveSanitize(p, args)
	var eng *engine.Engine
	if m.cfg.Streaming {
		eng = engine.New(m.cfg.Engine, m.hier)
		if sanitize {
			eng.EnableSanitizer()
		}
		if m.opts.trace != nil {
			eng.SetRecorder(m.opts.trace)
		}
		if inj != nil {
			eng.SetInjector(inj)
		}
	}
	core := cpu.New(m.cfg.Core, p, m.hier, eng)
	if m.opts.trace != nil {
		core.SetRecorder(m.opts.trace)
	}
	for _, a := range args {
		a.apply(core)
	}
	if ctx.Done() != nil {
		core.SetCancel(func(cycle int64) {
			if cerr := ctx.Err(); cerr != nil {
				panic(&CanceledError{Cycle: cycle, Err: cerr})
			}
		})
	}
	var cycles int64
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				switch e := r.(type) {
				case *cpu.WatchdogError:
					err = e
				case *CanceledError:
					err = e
				default:
					err = fmt.Errorf("uve: simulation aborted: %v", r)
				}
			}
		}()
		cycles = core.Run()
	}()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Cycles:    cycles,
		Committed: core.Stats.Committed,
		Core:      core.Stats,
		DRAM:      m.hier.DRAM.Stats,
		L1:        m.hier.L1D.Stats,
		L2:        m.hier.L2.Stats,
		BusUtil:   m.hier.DRAM.Utilization(cycles),

		SanitizerElided: elided,
	}
	if eng != nil {
		res.Engine = eng.Stats
		res.Collisions = eng.Collisions()
	}
	if inj != nil {
		res.Faults = inj.Stats
	}
	return res, nil
}

// runFunctional is Run's Functional-tier path: program-order interpretation
// against the machine's memory, filling only the architectural fields of
// Result. Stream descriptors iterate through the same engine address logic
// the detailed model uses, so descriptor semantics cannot drift.
func (m *Machine) runFunctional(ctx context.Context, p *Program, args []Arg) (*Result, error) {
	if m.opts.trace != nil {
		return nil, fmt.Errorf("uve: WithFidelity(Functional) cannot record traces (no cycles to attribute events to)")
	}
	if m.opts.faults != nil && m.opts.faults.Enabled() {
		return nil, fmt.Errorf("uve: WithFidelity(Functional) cannot inject faults (injectors perturb timing, which the tier does not model)")
	}
	sanitize, elided := m.resolveSanitize(p, args)
	cfg := funcsim.Config{
		VecBytes: m.cfg.Core.VecBytes,
		Sanitize: sanitize,
	}
	if m.cfg.Core.MaxCycles > 0 {
		cfg.MaxInsts = m.cfg.Core.MaxCycles * int64(m.cfg.Core.CommitWidth)
	}
	if ctx.Done() != nil {
		cfg.Cancel = func(insts int64) error {
			if cerr := ctx.Err(); cerr != nil {
				return &CanceledError{Insts: insts, Err: cerr}
			}
			return nil
		}
	}
	fm := funcsim.New(cfg, p, m.hier.Mem)
	for _, a := range args {
		a.applyFunc(fm)
	}
	if err := fm.Run(); err != nil {
		return nil, fmt.Errorf("uve: %w", err)
	}
	res := &Result{
		Committed:  fm.Committed(),
		Collisions: fm.Collisions(),

		SanitizerElided: elided,
	}
	res.Core.Committed = fm.Committed()
	res.Core.CommittedByKind = fm.CommittedByKind()
	return res, nil
}

// resolveSanitize decides whether shadow tracking runs for a program on
// this machine, and whether it was elided by a safety certificate. Under
// SanitizeAuto the program is statically verified first (entry argument
// values seed the prover); only a certificate proving every dependence pair
// disjoint elides the tracker, and fault campaigns never elide — injection
// perturbs engine timing, and the sanitizer is the oracle that shows the
// perturbation is architecturally invisible.
func (m *Machine) resolveSanitize(p *Program, args []Arg) (enable, elided bool) {
	if !m.cfg.Streaming {
		return false, false
	}
	switch m.opts.sanitize {
	case SanitizeOn:
		return true, false
	case SanitizeAuto:
		if m.opts.faults != nil && m.opts.faults.Enabled() {
			return true, false
		}
		ints := map[int]uint64{}
		for _, a := range args {
			if a.applyCost != nil {
				a.applyCost(ints)
			}
		}
		lo := &lint.Options{
			EntryIntVals: ints,
			Prove:        true,
			VecBytes:     m.cfg.Core.VecBytes,
		}
		for r := range ints {
			lo.EntryInt = append(lo.EntryInt, r)
		}
		diags, deps := lint.Analyze(p, lo)
		if cert := lint.Certify(diags, deps); cert.CollisionFree {
			return false, true
		}
		return true, false
	}
	return false, false
}

// Arg presets an architectural register before a run.
type Arg struct {
	apply     func(c *cpu.Core)
	applyFunc func(f *funcsim.Machine)
	applyCost func(args map[int]uint64)
}

// IntArg places v in integer register xN.
func IntArg(n int, v uint64) Arg {
	return Arg{
		apply:     func(c *cpu.Core) { c.SetIntReg(n, v) },
		applyFunc: func(f *funcsim.Machine) { f.SetIntReg(n, v) },
		applyCost: func(args map[int]uint64) { args[n] = v },
	}
}

// FloatArg places v (width w) in FP register fN.
func FloatArg(n int, w ElemWidth, v float64) Arg {
	return Arg{
		apply:     func(c *cpu.Core) { c.SetFPReg(n, w, v) },
		applyFunc: func(f *funcsim.Machine) { f.SetFPReg(n, w, v) },
		// The cost model does not track FP values: they never reach
		// control flow or addresses in this ISA.
	}
}

// CostEstimate is the static cost model's result: exact (or explicitly
// interval-valued) committed-instruction and per-stream traffic counts plus
// a set of proved cycle lower bounds. See EstimateCost.
type CostEstimate = cost.Estimate

// CostQuantity is one statically derived count: a point value when the
// analysis can prove it, an explicit [lo,hi] interval otherwise.
type CostQuantity = cost.Quantity

// EstimateCost runs the static descriptor cost model over p on this
// machine's configuration, without simulating: exact per-stream element,
// byte, chunk and cache-line counts (closed form for affine descriptors, a
// budgeted symbolic walk otherwise), committed-instruction counts, and
// roofline-style cycle lower bounds (commit/issue width, port groups, DRAM
// bandwidth, stream-engine throughput). Every reported quantity is either
// exact — differentially validated against the simulator's counters — or an
// explicit interval with a diagnostic; simulated Result.Cycles can never be
// below any reported bound. Only integer args matter (addresses and sizes);
// FloatArgs are ignored.
func (m *Machine) EstimateCost(p *Program, args ...Arg) (*CostEstimate, error) {
	params := cost.Params{
		Core:    m.cfg.Core,
		Eng:     m.cfg.Engine,
		Hier:    m.cfg.Memory,
		IntArgs: map[int]uint64{},
	}
	params.Eng.VecBytes = m.cfg.Core.VecBytes
	for _, a := range args {
		if a.applyCost != nil {
			a.applyCost(params.IntArgs)
		}
	}
	return cost.Analyze(p, params)
}

// F32Array is a float32 array in simulated memory.
type F32Array struct {
	m    *mem.Memory
	Base uint64
	N    int
}

// Set writes element i.
func (a *F32Array) Set(i int, v float64) { a.m.WriteFloat(a.Base+uint64(4*i), arch.W4, v) }

// At reads element i.
func (a *F32Array) At(i int) float64 { return a.m.ReadFloat(a.Base+uint64(4*i), arch.W4) }

// Fill sets every element from f.
func (a *F32Array) Fill(f func(i int) float64) {
	for i := 0; i < a.N; i++ {
		a.Set(i, f(i))
	}
}

// Slice copies the array out of simulated memory.
func (a *F32Array) Slice() []float64 {
	out := make([]float64, a.N)
	for i := range out {
		out[i] = a.At(i)
	}
	return out
}

// U64Array is a uint64 array in simulated memory.
type U64Array struct {
	m    *mem.Memory
	Base uint64
	N    int
}

// Set writes element i.
func (a *U64Array) Set(i int, v uint64) { a.m.Write(a.Base+uint64(8*i), arch.W8, v) }

// At reads element i.
func (a *U64Array) At(i int) uint64 { return a.m.Read(a.Base+uint64(8*i), arch.W8) }

// Fill sets every element from f.
func (a *U64Array) Fill(f func(i int) uint64) {
	for i := 0; i < a.N; i++ {
		a.Set(i, f(i))
	}
}
