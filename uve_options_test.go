package uve_test

import (
	"errors"
	"strings"
	"testing"

	uve "repro"
)

// The tests below exercise the functional options on NewMachine — the
// public surface for sanitizing, tracing, fault injection and watchdog
// bounds — without importing any internal package.

// saxpyMachine builds a fresh UVE machine (with the given options), the
// saxpy program and its inputs. The fills are deterministic, so two
// machines built by this helper run on identical data.
func saxpyMachine(n int, opts ...uve.Option) (*uve.Machine, *uve.Program, *uve.F32Array) {
	m := uve.NewMachine(uve.DefaultConfig(), opts...)
	x := m.Float32s(n)
	y := m.Float32s(n)
	x.Fill(func(i int) float64 { return float64(i) })
	y.Fill(func(i int) float64 { return float64(2 * i) })

	b := uve.NewProgram("saxpy")
	b.ConfigStream(0, uve.NewLoadStream(x.Base, uve.W4).Linear(int64(n), 1).MustBuild())
	b.ConfigStream(1, uve.NewLoadStream(y.Base, uve.W4).Linear(int64(n), 1).MustBuild())
	b.ConfigStream(2, uve.NewStoreStream(y.Base, uve.W4).Linear(int64(n), 1).MustBuild())
	b.I(uve.VDup(uve.W4, uve.V(3), uve.F(1)))
	b.Label("loop")
	b.I(uve.VFMul(uve.W4, uve.V(4), uve.V(3), uve.V(0), uve.None))
	b.I(uve.VFAdd(uve.W4, uve.V(2), uve.V(4), uve.V(1), uve.None))
	b.I(uve.BranchStreamNotEnd(0, "loop"))
	b.I(uve.Halt())
	return m, b.MustBuild(), y
}

// TestWithFaultsPreservesOutput is the public-API face of the resilience
// oracle: a seeded fault campaign perturbs timing, injects real adversity,
// and still produces byte-for-byte the output of the fault-free run.
func TestWithFaultsPreservesOutput(t *testing.T) {
	const n, a = 4096, 2.5

	clean, cleanProg, cleanY := saxpyMachine(n)
	cleanRes, err := clean.Run(cleanProg, uve.FloatArg(1, uve.W4, a))
	if err != nil {
		t.Fatal(err)
	}
	if cleanRes.Faults.Total() != 0 {
		t.Fatalf("fault-free run reported injections: %v", cleanRes.Faults)
	}

	plan := uve.DefaultFaultPlan(7)
	faulted, faultedProg, faultedY := saxpyMachine(n, uve.WithFaults(plan))
	faultedRes, err := faulted.Run(faultedProg, uve.FloatArg(1, uve.W4, a))
	if err != nil {
		t.Fatal(err)
	}
	if faultedRes.Faults.Total() == 0 {
		t.Fatalf("plan %v injected nothing at n=%d", plan, n)
	}

	want := cleanY.Slice()
	got := faultedY.Slice()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("y[%d] = %v under faults, want %v", i, got[i], want[i])
		}
	}

	// Same plan ⇒ the same run, cycle for cycle.
	again, againProg, _ := saxpyMachine(n, uve.WithFaults(plan))
	againRes, err := again.Run(againProg, uve.FloatArg(1, uve.W4, a))
	if err != nil {
		t.Fatal(err)
	}
	if againRes.Cycles != faultedRes.Cycles || againRes.Faults != faultedRes.Faults {
		t.Fatalf("replay diverged: %d cycles %v, want %d cycles %v",
			againRes.Cycles, againRes.Faults, faultedRes.Cycles, faultedRes.Faults)
	}
}

// TestWithMaxCyclesWatchdog bounds a run far below its natural length and
// expects the structured diagnostic, not a hang and not a bare string.
func TestWithMaxCyclesWatchdog(t *testing.T) {
	const n = 1 << 14
	m, p, _ := saxpyMachine(n, uve.WithMaxCycles(500))
	_, err := m.Run(p, uve.FloatArg(1, uve.W4, 2.5))
	if err == nil {
		t.Fatal("bounded run succeeded")
	}
	var w *uve.WatchdogError
	if !errors.As(err, &w) {
		t.Fatalf("error is %T, want *uve.WatchdogError: %v", err, err)
	}
	if w.Cycle < 500 {
		t.Fatalf("tripped at cycle %d, bound was 500", w.Cycle)
	}
	if !strings.Contains(err.Error(), "watchdog") || !strings.Contains(err.Error(), "stream table") {
		t.Fatalf("diagnostic lacks watchdog/stream-table detail: %v", err)
	}
}

// TestWithWatchdogHealthyRun checks a generous forward-progress bound does
// not perturb a healthy run.
func TestWithWatchdogHealthyRun(t *testing.T) {
	const n = 1024
	base, baseProg, _ := saxpyMachine(n)
	baseRes, err := base.Run(baseProg, uve.FloatArg(1, uve.W4, 2.5))
	if err != nil {
		t.Fatal(err)
	}
	m, p, _ := saxpyMachine(n, uve.WithWatchdog(1_000_000), uve.WithMaxCycles(100_000_000))
	res, err := m.Run(p, uve.FloatArg(1, uve.W4, 2.5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != baseRes.Cycles {
		t.Fatalf("watchdog changed timing: %d cycles, want %d", res.Cycles, baseRes.Cycles)
	}
}

// TestWithTraceAndSanitize runs traced + sanitized and checks the collector
// saw the run, the sanitizer stayed quiet on a disjoint kernel, and timing
// matched the plain run.
func TestWithTraceAndSanitize(t *testing.T) {
	const n = 1024
	base, baseProg, _ := saxpyMachine(n)
	baseRes, err := base.Run(baseProg, uve.FloatArg(1, uve.W4, 2.5))
	if err != nil {
		t.Fatal(err)
	}

	col := uve.NewTraceCollector(1<<12, 1000)
	m, p, y := saxpyMachine(n, uve.WithTrace(col), uve.WithSanitize(uve.SanitizeOn))
	res, err := m.Run(p, uve.FloatArg(1, uve.W4, 2.5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != baseRes.Cycles {
		t.Fatalf("tracing changed timing: %d cycles, want %d", res.Cycles, baseRes.Cycles)
	}
	if len(col.Events()) == 0 {
		t.Fatal("collector saw no events")
	}
	if got := col.Attribution().AttributedExcludingDrain(); got != res.Cycles {
		t.Fatalf("attributed %d cycles, run took %d", got, res.Cycles)
	}
	// saxpy's in-place y update is lockstep load/store over the same array:
	// the only tolerated overlap is stream 1 (load y) vs 2 (store y).
	for _, c := range res.Collisions {
		a, b := c.StreamA, c.StreamB
		if a > b {
			a, b = b, a
		}
		if a != 1 || b != 2 {
			t.Errorf("unexpected sanitizer collision: %v", c)
		}
	}
	if y.At(3) != float64(float32(2.5)*3+6) {
		t.Fatalf("y[3] = %v", y.At(3))
	}
}

// TestWithFidelityFunctional: the fast tier computes exactly what the
// detailed machine computes — identical output bytes and committed counts —
// while reporting no cycles, and rejects the timing-only options.
func TestWithFidelityFunctional(t *testing.T) {
	const n, a = 4096, 1.5

	cyc, cycProg, cycY := saxpyMachine(n)
	cycRes, err := cyc.Run(cycProg, uve.FloatArg(1, uve.W4, a))
	if err != nil {
		t.Fatal(err)
	}

	fn, fnProg, fnY := saxpyMachine(n, uve.WithFidelity(uve.Functional))
	fnRes, err := fn.Run(fnProg, uve.FloatArg(1, uve.W4, a))
	if err != nil {
		t.Fatal(err)
	}
	if fnRes.Cycles != 0 {
		t.Fatalf("functional run reported %d cycles", fnRes.Cycles)
	}
	if cycRes.Cycles == 0 {
		t.Fatal("cycle run reported no cycles")
	}
	if fnRes.Committed != cycRes.Committed {
		t.Fatalf("committed diverged: functional %d vs cycle %d", fnRes.Committed, cycRes.Committed)
	}
	for i := 0; i < n; i++ {
		if got, want := fnY.At(i), cycY.At(i); got != want {
			t.Fatalf("y[%d] = %v on the functional tier, %v on the cycle tier", i, got, want)
		}
	}

	// Timing-only options are configuration errors, not silent no-ops.
	tm, tmProg, _ := saxpyMachine(n, uve.WithFidelity(uve.Functional), uve.WithTrace(uve.NewTraceCollector(64, 0)))
	if _, err := tm.Run(tmProg); err == nil || !strings.Contains(err.Error(), "trace") {
		t.Fatalf("functional+trace error = %v, want trace conflict", err)
	}
	fm, fmProg, _ := saxpyMachine(n, uve.WithFidelity(uve.Functional), uve.WithFaults(uve.DefaultFaultPlan(1)))
	if _, err := fm.Run(fmProg); err == nil || !strings.Contains(err.Error(), "fault") {
		t.Fatalf("functional+faults error = %v, want faults conflict", err)
	}
}
