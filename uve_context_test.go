package uve_test

import (
	"context"
	"errors"
	"testing"
	"time"

	uve "repro"
)

// TestRunContextAlreadyCanceled: a context that is done before the run
// starts aborts immediately with the typed error, on both tiers.
func TestRunContextAlreadyCanceled(t *testing.T) {
	for _, tier := range []uve.Fidelity{uve.Cycle, uve.Functional} {
		m, p, _ := saxpyMachine(256, uve.WithFidelity(tier))
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := m.RunContext(ctx, p, uve.FloatArg(1, uve.W4, 2.0))
		if err == nil {
			t.Fatalf("tier %v: canceled context did not abort the run", tier)
		}
		var ce *uve.CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("tier %v: error is %T (%v), want *uve.CanceledError", tier, err, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("tier %v: errors.Is(err, context.Canceled) is false: %v", tier, err)
		}
	}
}

// TestRunContextDeadlineMidRun: an expiring deadline stops a long detailed
// run promptly, reporting the cycle the cancellation poll observed it.
func TestRunContextDeadlineMidRun(t *testing.T) {
	m, p, _ := saxpyMachine(1 << 18)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := m.RunContext(ctx, p, uve.FloatArg(1, uve.W4, 2.0))
	if err == nil {
		// The machine got the whole run done inside the deadline — possible
		// on a very fast host, and not a correctness failure.
		t.Skip("run finished before the 1ms deadline expired")
	}
	var ce *uve.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T (%v), want *uve.CanceledError", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("errors.Is(err, context.DeadlineExceeded) is false: %v", err)
	}
	if ce.Cycle <= 0 {
		t.Fatalf("mid-run cancellation reported cycle %d, want > 0", ce.Cycle)
	}
}

// TestRunDelegatesToRunContext: Run and RunContext(Background) produce
// identical measurements — Run is sugar, not a separate path.
func TestRunDelegatesToRunContext(t *testing.T) {
	const n, a = 2048, 2.5
	m1, p1, _ := saxpyMachine(n)
	r1, err := m1.Run(p1, uve.FloatArg(1, uve.W4, a))
	if err != nil {
		t.Fatal(err)
	}
	m2, p2, _ := saxpyMachine(n)
	r2, err := m2.RunContext(context.Background(), p2, uve.FloatArg(1, uve.W4, a))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Committed != r2.Committed {
		t.Fatalf("Run (%d cyc, %d inst) differs from RunContext(Background) (%d cyc, %d inst)",
			r1.Cycles, r1.Committed, r2.Cycles, r2.Committed)
	}
}
